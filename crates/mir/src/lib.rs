//! `parade-mir`: a basic-block mid-level IR for the mini-C translator
//! AST, plus the dataflow machinery the flow-sensitive lints build on.
//!
//! The pipeline:
//!
//! 1. [`lower::lower_program`] turns each function into a [`body::MirFunc`]
//!    — basic blocks in lexical creation order, explicit branch/loop
//!    edges, linearized access events, and structural markers
//!    (`ParallelEnter`, `WsEnter`, `Sibling`, …) so the lexical lint walk
//!    can replay the AST analyzer exactly.
//! 2. [`dataflow`] is the generic worklist-fixpoint framework
//!    (forward/backward, scope-restricted).
//! 3. [`analyses`] instantiates it: reaching definitions, live variables,
//!    postdominators, and the divergence analysis behind the PC009
//!    barrier-divergence lint.
//!
//! Each pipeline stage emits a `check.analyze` trace span tagged with a
//! [`span_arg`] stage id, so analyzer cost is visible in trace reports
//! alongside the runtime's own spans.

pub mod analyses;
pub mod body;
pub mod dataflow;
pub mod lower;

pub use analyses::{divergent_blocks, postdominators, DefSite, LiveVars, ReachingDefs};
pub use body::{
    AccessEvent, Block, BlockId, CondInfo, Eval, Marker, MirFunc, MirStmt, SiblingInfo,
    SiblingKind, Terminator, UpdateInfo, WsInfo,
};
pub use dataflow::{fixpoint, Analysis, BitSet, Direction, FixpointResult};
pub use lower::{lower_func, lower_program};

use std::sync::OnceLock;
use std::time::Instant;

use parade_net::VTime;

/// `check.analyze` span arg values, one per pipeline stage.
pub mod span_arg {
    /// AST → MIR lowering (emitted by the check driver around
    /// `lower_program`).
    pub const LOWER: u64 = 0;
    pub const REACHING_DEFS: u64 = 1;
    pub const LIVE_VARS: u64 = 2;
    pub const POSTDOMINATORS: u64 = 3;
    pub const DIVERGENCE: u64 = 4;
}

/// Wall-clock virtual time for analyzer trace spans. The analyzer runs on
/// the host (no simulated `VClock`), so spans are stamped with elapsed
/// nanoseconds since the first call.
pub fn vt_now() -> VTime {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    VTime::from_nanos(epoch.elapsed().as_nanos() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parade_translator::parser::parse;

    fn lower_main(src: &str) -> MirFunc {
        let prog = parse(src).expect("test program parses");
        let funcs = lower_program(&prog);
        funcs
            .into_iter()
            .find(|f| f.name == "main")
            .expect("main lowered")
    }

    /// All blocks between the `ParallelEnter` and its `ParallelExit`,
    /// inclusive (block creation order is lexical, so the range is
    /// contiguous).
    fn parallel_scope(func: &MirFunc) -> Vec<BlockId> {
        let mut enter = None;
        let mut exit = None;
        for (i, blk) in func.blocks.iter().enumerate() {
            for s in &blk.stmts {
                match s {
                    MirStmt::Marker(Marker::ParallelEnter { .. }) if enter.is_none() => {
                        enter = Some(i);
                    }
                    MirStmt::Marker(Marker::ParallelExit { .. }) => exit = Some(i),
                    _ => {}
                }
            }
        }
        let (lo, hi) = (enter.expect("enter"), exit.expect("exit"));
        (lo..=hi).map(|i| BlockId(i as u32)).collect()
    }

    fn whole(func: &MirFunc) -> Vec<BlockId> {
        (0..func.blocks.len()).map(|i| BlockId(i as u32)).collect()
    }

    #[test]
    fn bitset_ops() {
        let mut a = BitSet::new(130);
        assert!(a.insert(0));
        assert!(a.insert(129));
        assert!(!a.insert(129));
        assert!(a.contains(129) && !a.contains(64));
        let mut b = BitSet::new(130);
        b.insert(64);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.count(), 3);
        assert!(a.intersect_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![64]);
        assert!(BitSet::full(3).contains(2));
        assert!(BitSet::new(3).is_empty());
    }

    #[test]
    fn if_else_lowers_to_diamond() {
        let func = lower_main(
            "int main() { int x; x = 0; if (x > 0) { x = 1; } else { x = 2; } return x; }",
        );
        let entry = func.entry();
        let succs = func.successors(entry);
        assert_eq!(succs.len(), 2, "entry branches:\n{}", func.dump());
        let join: Vec<BlockId> = func.successors(succs[0]);
        assert_eq!(join, func.successors(succs[1]), "arms rejoin");
        assert!(matches!(
            func.blocks[entry.index()].term,
            Terminator::Branch { .. }
        ));
        // The join block carries the CondExit marker.
        assert!(func.blocks[join[0].index()]
            .stmts
            .iter()
            .any(|s| matches!(s, MirStmt::Marker(Marker::CondExit))));
    }

    #[test]
    fn for_loop_has_backedge() {
        let func = lower_main(
            "int main() { int i; int s; for (i = 0; i < 8; i = i + 1) { s = s + i; } return s; }",
        );
        // Find the header: the block with a Branch terminator.
        let header = (0..func.blocks.len())
            .map(|i| BlockId(i as u32))
            .find(|b| matches!(func.blocks[b.index()].term, Terminator::Branch { .. }))
            .expect("loop header");
        let preds = func.predecessors();
        assert!(
            preds[header.index()].len() >= 2,
            "header has entry edge and backedge:\n{}",
            func.dump()
        );
    }

    #[test]
    fn ws_loop_is_straight_line() {
        let func = lower_main(
            "int main() { int i; int a[64];\n#pragma omp parallel for\nfor (i = 0; i < 64; i = i + 1) { a[i] = i; } return 0; }",
        );
        for b in parallel_scope(&func) {
            assert!(
                !matches!(func.blocks[b.index()].term, Terminator::Branch { .. }),
                "work-shared loop must not branch:\n{}",
                func.dump()
            );
        }
    }

    #[test]
    fn reaching_defs_kill_earlier_defs() {
        let func = lower_main("int main() { int x; x = 1; x = 2; return x; }");
        let scope = whole(&func);
        let rd = ReachingDefs::compute(&func, &scope);
        let x = rd.var_index("x").expect("x tracked");
        // At function exit (end of bb0) only the last def of x reaches.
        let out = &rd.result.output[0];
        let live_sites: Vec<usize> = rd
            .sites_of(x)
            .iter()
            .copied()
            .filter(|&s| out.contains(s))
            .collect();
        assert_eq!(live_sites.len(), 1);
        let site = rd.sites[live_sites[0]];
        assert_eq!(site.block, 0);
        // before_stmt at the site's own statement excludes it.
        let before = rd.before_stmt(&func, 0, site.stmt);
        assert!(!before.contains(live_sites[0]));
    }

    #[test]
    fn live_vars_backward() {
        let func = lower_main("int main() { int x; int y; x = 1; y = x; return y; }");
        let scope = whole(&func);
        let lv = LiveVars::compute(&func, &scope);
        let y = lv.var_index("y").expect("y tracked");
        // y is live out of bb0 only if the return lands in a later block;
        // in-block, live-in of the entry must not include y (defined
        // before use).
        assert!(!lv.live_in(BlockId(0)).contains(y));
    }

    #[test]
    fn postdominators_of_diamond() {
        let func = lower_main(
            "int main() { int x; x = 0; if (x > 0) { x = 1; } else { x = 2; } return x; }",
        );
        let scope = whole(&func);
        let pdom = postdominators(&func, &scope);
        let entry = func.entry();
        let arms = func.successors(entry);
        let join = func.successors(arms[0])[0];
        // The join postdominates the entry and both arms; the arms do not
        // postdominate the entry.
        assert!(pdom[entry.index()].contains(join.index()));
        for a in &arms {
            assert!(pdom[a.index()].contains(join.index()));
            assert!(!pdom[entry.index()].contains(a.index()));
        }
    }

    #[test]
    fn thread_branch_makes_arm_divergent_but_not_join() {
        let func = lower_main(
            "int main() { int x;\n#pragma omp parallel\n{ if (omp_get_thread_num() > 0) { x = 1; } x = 2; }\nreturn 0; }",
        );
        let scope = parallel_scope(&func);
        let div = divergent_blocks(&func, &scope, &|_| false);
        let branch = scope
            .iter()
            .copied()
            .find(|b| {
                matches!(
                    func.blocks[b.index()].term,
                    Terminator::Branch {
                        thread_num: true,
                        ..
                    }
                )
            })
            .expect("thread-dependent branch");
        let succs = func.successors(branch);
        let (then_bb, join) = (succs[0], succs[1]);
        assert!(div[then_bb.index()], "then-arm diverges:\n{}", func.dump());
        assert!(!div[join.index()], "join reconverges");
        assert!(!div[branch.index()], "the branch block itself is uniform");
    }

    #[test]
    fn shared_branch_is_uniform() {
        let func = lower_main(
            "int main() { int n; int x; n = 4;\n#pragma omp parallel\n{ if (n > 0) { x = 1; } }\nreturn 0; }",
        );
        let scope = parallel_scope(&func);
        let div = divergent_blocks(&func, &scope, &|_| false);
        assert!(div.iter().all(|d| !d), "no thread-dependent input");
    }

    #[test]
    fn private_entry_taint_spreads_through_copies() {
        // `p` enters the region with a per-thread value; a branch on a
        // copy of it diverges.
        let func = lower_main(
            "int main() { int p; int x;\n#pragma omp parallel\n{ int q; q = p; if (q > 0) { x = 1; } }\nreturn 0; }",
        );
        let scope = parallel_scope(&func);
        let div = divergent_blocks(&func, &scope, &|name| name == "p");
        assert!(div.iter().any(|d| *d), "copy of tainted entry diverges");
        let uniform = divergent_blocks(&func, &scope, &|_| false);
        assert!(uniform.iter().all(|d| !d), "untainted entry stays uniform");
    }

    #[test]
    fn divergent_break_taints_loop_join() {
        // A break under a thread-dependent condition makes the loop's
        // continuation divergent (threads disagree on iteration count),
        // but the loop exit reconverges.
        let func = lower_main(
            "int main() { int i; int s;\n#pragma omp parallel\n{ for (i = 0; i < 8; i = i + 1) { if (omp_get_thread_num() > 0) { break; } s = s + 1; } }\nreturn 0; }",
        );
        let scope = parallel_scope(&func);
        let div = divergent_blocks(&func, &scope, &|_| false);
        // The block after the divergent if (the `s = s + 1` join inside
        // the loop body) must be divergent.
        let join = scope
            .iter()
            .copied()
            .find(|b| {
                func.blocks[b.index()].stmts.iter().any(|s| {
                    matches!(s, MirStmt::Eval(e) if e.defs.contains(&"s".to_string())
                        && e.uses.contains(&"s".to_string()))
                })
            })
            .expect("loop-body join block");
        assert!(
            div[join.index()],
            "post-break join diverges:\n{}",
            func.dump()
        );
        // The loop exit (the block holding the ParallelExit marker, after
        // CondExit) reconverges: every thread eventually leaves the loop.
        let exit = scope
            .iter()
            .copied()
            .find(|b| {
                func.blocks[b.index()]
                    .stmts
                    .iter()
                    .any(|s| matches!(s, MirStmt::Marker(Marker::ParallelExit { .. })))
            })
            .expect("region exit block");
        assert!(
            !div[exit.index()],
            "loop exit reconverges:\n{}",
            func.dump()
        );
    }

    #[test]
    fn vt_now_is_monotonic() {
        let a = vt_now();
        let b = vt_now();
        assert!(b.0 >= a.0);
    }
}
