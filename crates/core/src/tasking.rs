//! Cluster tasking from inside a parallel region: [`ThreadCtx::task_phase`]
//! and the [`TaskScope`] spawn surface.
//!
//! A *task phase* treats the whole cluster as one task pool: each node's
//! lead thread runs a `parade-tasks` scheduler over the node's
//! communicator, task bodies execute with full [`ThreadCtx`] access (DSM
//! reads/writes fault pages in as usual), and the phase ends when the
//! distributed termination detector proves every spawned task ran exactly
//! once. The phase is bracketed by cluster barriers, so data written before
//! the phase is visible to every task and task-written pages are visible
//! everywhere after it (write faults record interval notices that the
//! closing barrier advertises).
//!
//! Dependency edges carry their own consistency: a task's completion
//! flushes the executing node (an HLRC release) and the flushed page ids
//! travel as *notices* along `Complete` messages and into dependent tasks,
//! which invalidate those pages before running (the acquire). `target`
//! offload maps `map(to)` onto a pre-offload flush whose notices ship with
//! the pinned task, and `map(from)` onto the completion notices applied
//! when `target_sync` observes the result — the cluster-as-device mapping.

use std::sync::Arc;

use parade_dsm::PageId;
use parade_net::VClock;
use parade_tasks::{run_to_merge, NodeSched, TaskCtx as SpawnCtx, TaskDesc, TaskExecutor};

use crate::ctx::ThreadCtx;

/// A task body: runs on whichever node the scheduler places it, with that
/// node's thread context (DSM access, virtual-time charging), the task's
/// descriptor (args, injected dependency results), and a spawn context for
/// children. Returns the task's result values, merged cluster-wide at the
/// end of the phase.
pub type TaskFn = Arc<dyn Fn(&ThreadCtx, &TaskDesc, &mut SpawnCtx) -> Vec<f64> + Send + Sync>;

/// Adapter between the scheduler's executor hooks and the node runtime:
/// bodies come from the phase's function table, `release` is a DSM flush,
/// `acquire` invalidates noticed pages.
struct CoreExecutor<'a> {
    tc: &'a ThreadCtx,
    funcs: &'a [TaskFn],
}

impl TaskExecutor for CoreExecutor<'_> {
    fn exec(&mut self, desc: &TaskDesc, sctx: &mut SpawnCtx, clock: &mut VClock) -> Vec<f64> {
        // The scheduler holds the thread's clock exclusively for the phase;
        // park it back under the thread context while the body runs so
        // ThreadCtx accessors charge the right clock, then reclaim it.
        self.tc
            .put_clock(std::mem::replace(clock, VClock::manual()));
        let f = self.funcs.get(desc.func as usize).unwrap_or_else(|| {
            panic!("task function index {} out of range", desc.func);
        });
        let r = f(self.tc, desc, sctx);
        *clock = self.tc.take_clock();
        r
    }

    fn release(&mut self, clock: &mut VClock) -> Vec<u64> {
        self.tc
            .rt()
            .dsm
            .flush(clock)
            .into_iter()
            .map(|p| p as u64)
            .collect()
    }

    fn acquire(&mut self, notices: &[u64], clock: &mut VClock) {
        let pages: Vec<PageId> = notices.iter().map(|&n| n as PageId).collect();
        self.tc.rt().dsm.invalidate_pages(&pages, clock);
    }
}

/// The root spawn surface of a task phase, handed to the phase body on each
/// node's lead thread.
pub struct TaskScope<'a> {
    tc: &'a ThreadCtx,
    funcs: &'a [TaskFn],
    sched: NodeSched,
}

impl TaskScope<'_> {
    pub fn node(&self) -> usize {
        self.tc.node()
    }

    pub fn num_nodes(&self) -> usize {
        self.tc.num_nodes()
    }

    /// Spawn a root task (`#pragma omp task`). Returns its id.
    pub fn spawn(&mut self, func: u32, args: Vec<u64>) -> u64 {
        let mut clock = self.tc.take_clock();
        let id = self.sched.spawn(func, args, &mut clock);
        self.tc.put_clock(clock);
        id
    }

    /// Spawn with `depend`-style edges on previously spawned ids; `inject`
    /// appends each dependency's result values to the task's args.
    pub fn spawn_with_deps(
        &mut self,
        func: u32,
        args: Vec<u64>,
        deps: Vec<u64>,
        inject: bool,
    ) -> u64 {
        let mut clock = self.tc.take_clock();
        let id = self
            .sched
            .spawn_with_deps(func, args, deps, inject, &mut clock);
        self.tc.put_clock(clock);
        id
    }

    /// `#pragma omp target device(n)`: offload a pinned task to `device`.
    /// The spawning node flushes first (the `map(to)` release) and the
    /// flush notices ship with the task, so the device invalidates its
    /// stale copies of mapped pages before the body runs.
    pub fn target(&mut self, device: usize, func: u32, args: Vec<u64>) -> u64 {
        let mut clock = self.tc.take_clock();
        let notices: Vec<u64> = self
            .tc
            .rt()
            .dsm
            .flush(&mut clock)
            .into_iter()
            .map(|p| p as u64)
            .collect();
        let id = self
            .sched
            .target_with_notices(device, func, args, notices, &mut clock);
        self.tc.put_clock(clock);
        id
    }

    /// Block until target task `id` completes; applies the device's
    /// completion notices (the `map(from)` acquire), so mapped results are
    /// fetched fresh on the next read.
    pub fn target_sync(&mut self, id: u64) {
        let mut clock = self.tc.take_clock();
        let mut ex = CoreExecutor {
            tc: self.tc,
            funcs: self.funcs,
        };
        self.sched.target_sync(id, &mut ex, &mut clock);
        self.tc.put_clock(clock);
    }

    /// `#pragma omp taskwait`: block until every root task spawned by this
    /// node has completed, executing locally queued tasks meanwhile.
    pub fn taskwait(&mut self) {
        let mut clock = self.tc.take_clock();
        let mut ex = CoreExecutor {
            tc: self.tc,
            funcs: self.funcs,
        };
        self.sched.taskwait(&mut ex, &mut clock);
        self.tc.put_clock(clock);
    }
}

impl ThreadCtx {
    /// Run a task phase: `body` executes on each node's lead thread to
    /// spawn root tasks (other threads of the team skip straight to the
    /// closing barrier), then the distributed scheduler drains the graph.
    ///
    /// Returns `Some` of the id-sorted `(task id, result)` merge on lead
    /// threads — identical on every node regardless of steal schedule —
    /// and `None` on non-lead threads.
    pub fn task_phase(
        &self,
        funcs: &[TaskFn],
        body: impl FnOnce(&mut TaskScope),
    ) -> Option<Vec<(u64, Vec<f64>)>> {
        // Opening consistency point: pre-phase writes visible everywhere.
        self.barrier();
        let merged = if self.local_thread() == 0 {
            let sched = NodeSched::new(Arc::clone(&self.rt().comm), self.rt().task_cfg);
            let mut scope = TaskScope {
                tc: self,
                funcs,
                sched,
            };
            body(&mut scope);
            let mut clock = self.take_clock();
            let mut ex = CoreExecutor { tc: self, funcs };
            let merged = run_to_merge(&mut scope.sched, &mut ex, &mut clock);
            self.put_clock(clock);
            Some(merged)
        } else {
            None
        };
        // Closing consistency point: task-written pages visible everywhere.
        self.barrier();
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::team::Cluster;
    use parade_net::{NetProfile, TimeSource};
    use parade_tasks::{SchedConfig, StealStrategy};

    fn test_cluster(nodes: usize, tpn: usize, sched: SchedConfig) -> Cluster {
        Cluster::builder()
            .nodes(nodes)
            .threads_per_node(tpn)
            .net(NetProfile::zero())
            .time(TimeSource::Manual)
            .pool_bytes(256 * parade_dsm::PAGE_SIZE)
            .task_scheduler(sched)
            .build()
            .unwrap()
    }

    fn run_square_phase(sched: SchedConfig) -> Vec<(u64, Vec<f64>)> {
        let c = test_cluster(2, 2, sched);
        c.run(|g| {
            g.parallel(move |tc| {
                let funcs: Vec<TaskFn> = vec![Arc::new(
                    |_tc: &ThreadCtx, d: &TaskDesc, _s: &mut SpawnCtx| {
                        vec![(d.args[0] * d.args[0]) as f64]
                    },
                )];
                tc.task_phase(&funcs, |scope| {
                    for i in 0..6u64 {
                        scope.spawn(0, vec![i + 10 * scope.node() as u64]);
                    }
                })
            })
            .expect("master thread is node 0's lead")
        })
    }

    #[test]
    fn task_phase_merges_identically_across_strategies() {
        let flat = run_square_phase(SchedConfig {
            strategy: StealStrategy::Flat,
            ..SchedConfig::default()
        });
        let random = run_square_phase(SchedConfig::default());
        assert_eq!(flat.len(), 12, "6 root spawns per node on 2 nodes");
        assert_eq!(flat, random);
    }

    #[test]
    fn task_bodies_read_and_write_dsm() {
        let c = test_cluster(2, 2, SchedConfig::default());
        let out = c.run(|g| {
            let xs = g.alloc_f64(64);
            for i in 0..64 {
                g.set(&xs, i, i as f64);
            }
            g.parallel(move |tc| {
                let funcs: Vec<TaskFn> = vec![Arc::new(
                    move |tc: &ThreadCtx, d: &TaskDesc, _s: &mut SpawnCtx| {
                        let (a, b) = (d.args[0] as usize, d.args[1] as usize);
                        let mut sum = 0.0;
                        for i in a..b {
                            let v = tc.get(&xs, i);
                            tc.set(&xs, i, v + 1.0);
                            sum += v;
                        }
                        vec![sum]
                    },
                )];
                let merged = tc.task_phase(&funcs, |scope| {
                    if scope.node() == 0 {
                        for blk in 0..4u64 {
                            scope.spawn(0, vec![blk * 16, (blk + 1) * 16]);
                        }
                    }
                });
                // Post-phase barrier published the increments everywhere.
                let mut total = 0.0;
                for i in tc.for_static(0..64) {
                    total += tc.get(&xs, i);
                }
                let total = tc.reduce_f64_sum(total);
                (merged, total)
            })
        });
        let (merged, total) = out;
        let merged = merged.expect("lead thread");
        let task_sum: f64 = merged.iter().map(|(_, r)| r[0]).sum();
        assert_eq!(task_sum, (0..64).sum::<usize>() as f64);
        assert_eq!(total, (0..64).sum::<usize>() as f64 + 64.0);
    }

    #[test]
    fn target_offload_roundtrips_through_dsm() {
        let c = test_cluster(3, 1, SchedConfig::default());
        let got = c.run(|g| {
            let xs = g.alloc_f64(8);
            g.parallel(move |tc| {
                let funcs: Vec<TaskFn> = vec![Arc::new(
                    move |tc: &ThreadCtx, _d: &TaskDesc, _s: &mut SpawnCtx| {
                        // Runs on the device node: read mapped-in values,
                        // write results back (map(from) via notices).
                        let mut out = Vec::new();
                        for i in 0..8 {
                            let v = tc.get(&xs, i);
                            tc.set(&xs, i, v * 2.0);
                            out.push(v);
                        }
                        out
                    },
                )];
                tc.task_phase(&funcs, |scope| {
                    if scope.node() == 0 {
                        // Written immediately before offload: the map(to)
                        // flush inside `target` must make these visible.
                        for i in 0..8 {
                            scope.tc.set(&xs, i, (i + 1) as f64);
                        }
                        let id = scope.target(2, 0, vec![]);
                        scope.target_sync(id);
                        // map(from): device writes visible after sync.
                        let mut sum = 0.0;
                        for i in 0..8 {
                            sum += scope.tc.get(&xs, i);
                        }
                        assert_eq!(sum, 2.0 * (1..=8).sum::<usize>() as f64);
                    }
                })
            })
        });
        let merged = got.expect("lead");
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].1, (1..=8).map(|v| v as f64).collect::<Vec<_>>());
    }

    #[test]
    fn dependency_chain_injects_results() {
        let c = test_cluster(2, 2, SchedConfig::default());
        let merged = c.run(|g| {
            g.parallel(move |tc| {
                let funcs: Vec<TaskFn> = vec![Arc::new(
                    |_tc: &ThreadCtx, d: &TaskDesc, _s: &mut SpawnCtx| {
                        if d.args[0] == 0 {
                            vec![2.0]
                        } else {
                            vec![f64::from_bits(d.args[1]) * 3.0]
                        }
                    },
                )];
                tc.task_phase(&funcs, |scope| {
                    if scope.node() == 0 {
                        let a = scope.spawn(0, vec![0]);
                        let b = scope.spawn_with_deps(0, vec![1], vec![a], true);
                        scope.spawn_with_deps(0, vec![1], vec![b], true);
                    }
                })
            })
            .expect("lead")
        });
        let vals: Vec<f64> = merged.iter().map(|(_, r)| r[0]).collect();
        assert_eq!(vals, vec![2.0, 6.0, 18.0]);
    }
}
