//! `ThreadCtx` — the per-thread handle inside a parallel region.
//!
//! Every OpenMP construct the ParADE translator emits maps to a method
//! here, with **two implementations** selected by the cluster's
//! [`ProtocolMode`]:
//!
//! * `Parade` — the paper's hybrid lowering: hierarchical mutual exclusion
//!   (node-local lock + inter-node collective), message-passing update
//!   protocol for small data, no implicit barriers where a collective
//!   already synchronizes (Figures 2/3, right-hand sides).
//! * `SdsmOnly` — the conventional SDSM lowering used as the baseline:
//!   distributed locks, shared flags/accumulators on DSM pages, explicit
//!   barriers (Figures 2/3, left-hand sides).
//!
//! Kernels are therefore written once and benchmarked under both modes.

use std::cell::{Cell, RefCell};
use std::ops::Range;
use std::sync::Arc;

use parade_cluster::ProtocolMode;
use parade_mpi::ReduceOp;
use parade_net::{VClock, VTime};
use parade_trace::{self as trace, EventKind};

use crate::runtime::{construct_gen, NodeRt, INTERNAL_LOCK_BASE, SLOTS};
use crate::shared::{Pod, SharedScalar, SharedVec};

/// Cost of grabbing one dynamic-scheduling chunk from the node-local queue.
const DYN_CHUNK_OVERHEAD: VTime = VTime(1_000);

/// Internal lock-id sub-spaces.
const LOCK_SPACE_REDUCE: u64 = INTERNAL_LOCK_BASE;
const LOCK_SPACE_SINGLE: u64 = INTERNAL_LOCK_BASE + (1 << 20);
const LOCK_SPACE_ATOMIC: u64 = INTERNAL_LOCK_BASE + (2 << 20);

/// Per-thread context inside a parallel region.
pub struct ThreadCtx {
    rt: Arc<NodeRt>,
    local_tid: usize,
    region_no: u64,
    clock: RefCell<VClock>,
    single_seq: Cell<u64>,
    reduce_seq: Cell<u64>,
    loop_seq: Cell<u64>,
}

impl ThreadCtx {
    pub(crate) fn new(rt: Arc<NodeRt>, local_tid: usize, region_no: u64, clock: VClock) -> Self {
        ThreadCtx {
            rt,
            local_tid,
            region_no,
            clock: RefCell::new(clock),
            single_seq: Cell::new(0),
            reduce_seq: Cell::new(0),
            loop_seq: Cell::new(0),
        }
    }

    pub(crate) fn into_clock(self) -> VClock {
        self.clock.into_inner()
    }

    pub(crate) fn region_end(&self) {
        // The implicit join barrier of the fork-join model.
        self.barrier();
    }

    // ---- identity ---------------------------------------------------------

    /// Global thread id (`omp_get_thread_num`).
    pub fn thread_num(&self) -> usize {
        self.rt.global_tid(self.local_tid)
    }

    /// Total threads in the team (`omp_get_num_threads`).
    pub fn num_threads(&self) -> usize {
        self.rt.total_threads()
    }

    pub fn node(&self) -> usize {
        self.rt.node
    }

    pub fn num_nodes(&self) -> usize {
        self.rt.nnodes
    }

    pub fn local_thread(&self) -> usize {
        self.local_tid
    }

    pub fn threads_per_node(&self) -> usize {
        self.rt.tpn
    }

    pub fn mode(&self) -> ProtocolMode {
        self.rt.mode
    }

    // ---- virtual time -----------------------------------------------------

    /// This thread's current virtual time.
    pub fn now(&self) -> VTime {
        let mut c = self.clock.borrow_mut();
        c.sample_compute();
        c.now()
    }

    /// Charge explicit compute cost (used by kernels running under the
    /// deterministic `Manual` time source).
    pub fn charge(&self, d: VTime) {
        self.clock.borrow_mut().charge(d);
    }

    pub(crate) fn with_clock<R>(&self, f: impl FnOnce(&mut VClock) -> R) -> R {
        f(&mut self.clock.borrow_mut())
    }

    pub(crate) fn rt(&self) -> &Arc<NodeRt> {
        &self.rt
    }

    /// Move the clock out of the thread context (leaving a dummy). The task
    /// scheduler drives the phase with an exclusive `&mut VClock`; while it
    /// does, ThreadCtx methods must not be called — `put_clock` (or the
    /// executor's swap around a task body) restores access.
    pub(crate) fn take_clock(&self) -> VClock {
        std::mem::replace(&mut self.clock.borrow_mut(), VClock::manual())
    }

    pub(crate) fn put_clock(&self, c: VClock) {
        *self.clock.borrow_mut() = c;
    }

    // ---- shared data ------------------------------------------------------

    /// Bind a shared vector for repeated access.
    pub fn bind<'t, T: Pod>(&'t self, v: &SharedVec<T>) -> BoundVec<'t, T> {
        BoundVec { tc: self, v: *v }
    }

    /// Bind a shared `f64` vector (convenience used throughout examples).
    pub fn bind_f64<'t>(&'t self, v: &SharedVec<f64>) -> BoundVec<'t, f64> {
        self.bind(v)
    }

    /// Read one element.
    pub fn get<T: Pod>(&self, v: &SharedVec<T>, i: usize) -> T {
        self.with_clock(|c| self.rt.dsm.read(v.region, i * std::mem::size_of::<T>(), c))
    }

    /// Write one element.
    pub fn set<T: Pod>(&self, v: &SharedVec<T>, i: usize, val: T) {
        self.with_clock(|c| {
            self.rt
                .dsm
                .write(v.region, i * std::mem::size_of::<T>(), val, c)
        })
    }

    /// Bulk read `out.len()` elements starting at `first`.
    pub fn read_into<T: Pod>(&self, v: &SharedVec<T>, first: usize, out: &mut [T]) {
        self.with_clock(|c| self.rt.dsm.read_slice(v.region, first, out, c))
    }

    /// Bulk write elements starting at `first`.
    pub fn write_from<T: Pod>(&self, v: &SharedVec<T>, first: usize, src: &[T]) {
        self.with_clock(|c| self.rt.dsm.write_slice(v.region, first, src, c))
    }

    /// Read a shared scalar (update-protocol local copy in Parade mode,
    /// DSM page in the baseline).
    pub fn scalar_get<T: Pod + ScalarPrim>(&self, s: &SharedScalar<T>) -> T {
        match self.rt.mode {
            ProtocolMode::Parade => T::small_read(self.rt.small(), s),
            ProtocolMode::SdsmOnly => self.with_clock(|c| self.rt.dsm.read(s.region, 0, c)),
        }
    }

    // ---- barriers ----------------------------------------------------------

    /// Hierarchical cluster-wide barrier: node-local barrier, then the
    /// inter-node HLRC barrier (flush + write notices + invalidations +
    /// home migration) performed by one representative per node.
    pub fn barrier(&self) {
        if trace::enabled() {
            trace::begin(EventKind::OmpBarrier, self.now());
        }
        self.rt.barrier.wait(&mut self.clock.borrow_mut());
        if self.local_tid == 0 {
            self.with_clock(|c| self.rt.dsm.barrier(c));
        }
        self.rt.barrier.wait(&mut self.clock.borrow_mut());
        if trace::enabled() {
            trace::end(EventKind::OmpBarrier, self.now());
        }
    }

    /// Node-local barrier only (no DSM consistency action).
    pub fn node_barrier(&self) {
        self.rt.barrier.wait(&mut self.clock.borrow_mut());
    }

    // ---- work sharing -------------------------------------------------------

    /// Static loop scheduling (the paper's only supported policy): evenly
    /// divided contiguous iteration blocks.
    pub fn for_static(&self, range: Range<usize>) -> Range<usize> {
        partition(range, self.num_threads(), self.thread_num())
    }

    /// Static scheduling with a chunk size: round-robin chunks
    /// (`schedule(static, chunk)`).
    pub fn for_static_chunks(&self, range: Range<usize>, chunk: usize) -> StaticChunks {
        assert!(chunk > 0);
        StaticChunks {
            next: range.start + self.thread_num() * chunk,
            end: range.end,
            stride: self.num_threads() * chunk,
            chunk,
        }
    }

    /// `parallel for` convenience: static schedule plus the implicit
    /// end-of-loop barrier.
    pub fn par_for(&self, range: Range<usize>, mut body: impl FnMut(usize)) {
        for i in self.for_static(range) {
            body(i);
        }
        self.barrier();
    }

    /// Dynamic scheduling (`schedule(dynamic, chunk)`), an extension beyond
    /// the paper's static-only runtime (its §8 future work): iterations are
    /// split statically across nodes, then claimed chunk-by-chunk from a
    /// node-local queue — remote chunk stealing would cost a network round
    /// trip per chunk on an SMP cluster. Ends with the implicit barrier.
    pub fn for_dynamic(&self, range: Range<usize>, chunk: usize, body: impl FnMut(Range<usize>)) {
        self.dynamic_loop(range, DynPolicy::Fixed(chunk.max(1)), body);
        self.barrier();
    }

    /// `for_dynamic` without the implicit barrier (`nowait`).
    pub fn for_dynamic_nowait(
        &self,
        range: Range<usize>,
        chunk: usize,
        body: impl FnMut(Range<usize>),
    ) {
        self.dynamic_loop(range, DynPolicy::Fixed(chunk.max(1)), body);
    }

    /// Guided scheduling (`schedule(guided, min_chunk)`): chunk sizes decay
    /// with the remaining work. Ends with the implicit barrier.
    pub fn for_guided(
        &self,
        range: Range<usize>,
        min_chunk: usize,
        body: impl FnMut(Range<usize>),
    ) {
        self.dynamic_loop(range, DynPolicy::Guided(min_chunk.max(1)), body);
        self.barrier();
    }

    fn dynamic_loop(
        &self,
        range: Range<usize>,
        policy: DynPolicy,
        mut body: impl FnMut(Range<usize>),
    ) {
        let node_range = partition(range, self.rt.nnodes, self.rt.node);
        let seq = self.loop_seq.replace(self.loop_seq.get() + 1);
        let gen = construct_gen(self.region_no, seq);
        let slot = (gen as usize) % SLOTS;
        let tpn = self.rt.tpn;
        loop {
            let grabbed = {
                let mut s = self.rt.dyn_slots[slot].lock();
                if s.gen != gen {
                    s.gen = gen;
                    s.next = node_range.start;
                    s.end = node_range.end;
                }
                if s.next >= s.end {
                    None
                } else {
                    let chunk = match policy {
                        DynPolicy::Fixed(c) => c,
                        DynPolicy::Guided(min) => ((s.end - s.next) / (2 * tpn)).max(min),
                    };
                    let start = s.next;
                    s.next = (start + chunk).min(s.end);
                    Some(start..s.next)
                }
            };
            match grabbed {
                Some(r) => {
                    self.charge(DYN_CHUNK_OVERHEAD);
                    if trace::enabled() {
                        trace::instant(
                            EventKind::OmpForChunk,
                            (r.end - r.start) as u64,
                            self.now(),
                        );
                    }
                    body(r);
                }
                None => break,
            }
        }
    }

    // ---- synchronization directives -----------------------------------------

    /// Generic `critical` (arbitrary body): hierarchical mutual exclusion —
    /// a node-local mutex plus the distributed DSM lock. This is the
    /// fallback for code blocks the translator cannot analyze lexically.
    pub fn critical<R>(&self, id: u64, f: impl FnOnce(&ThreadCtx) -> R) -> R {
        assert!(
            id < INTERNAL_LOCK_BASE,
            "critical id collides with runtime locks"
        );
        self.critical_raw(id, f)
    }

    fn critical_raw<R>(&self, lock_id: u64, f: impl FnOnce(&ThreadCtx) -> R) -> R {
        if trace::enabled() {
            trace::begin_arg(EventKind::OmpCritical, lock_id, self.now());
        }
        let m = self.rt.critical_mutex(lock_id);
        let mut last_release = m.lock();
        self.with_clock(|c| {
            c.sample_compute();
            c.sync_to(*last_release);
            self.rt.dsm.lock_acquire(lock_id, c);
        });
        let r = f(self);
        self.with_clock(|c| {
            c.sample_compute();
            self.rt.dsm.lock_release(lock_id, c);
        });
        *last_release = self.with_clock(|c| c.now());
        if trace::enabled() {
            trace::end(EventKind::OmpCritical, self.now());
        }
        r
    }

    /// `critical` over a small analyzable block that reduces into a shared
    /// scalar — ParADE's headline optimization (Figure 2): the pthread lock
    /// handles intra-node exclusion and a collective replaces the
    /// distributed lock. In the baseline mode this degenerates to the
    /// lock-based path of Figure 2's left side. Returns the new value.
    pub fn critical_reduce_f64(&self, s: &SharedScalar<f64>, op: ReduceOp, operand: f64) -> f64 {
        self.atomic_f64(s, op, operand)
    }

    /// `atomic` directive: atomic update of a shared scalar. In Parade mode
    /// this maps *exactly* to a collective (§4.2): thread contributions are
    /// combined within the node, allreduced across nodes, and applied to
    /// every node's local copy. All threads must reach the construct (the
    /// usual restriction of the collective lowering, §7).
    pub fn atomic_f64(&self, s: &SharedScalar<f64>, op: ReduceOp, operand: f64) -> f64 {
        match self.rt.mode {
            ProtocolMode::Parade => {
                let rt = Arc::clone(&self.rt);
                let small = s.small;
                self.hier_f64(op, operand, move |total| {
                    let cur = rt.small().read_f64(small, 0);
                    let new = op.fold_f64(cur, total);
                    rt.small().write_f64(small, 0, new);
                    new
                })
            }
            ProtocolMode::SdsmOnly => {
                let lock_id = LOCK_SPACE_ATOMIC + s.region.id as u64;
                self.critical_raw(lock_id, |tc| {
                    tc.with_clock(|c| {
                        let cur: f64 = tc.rt.dsm.read(s.region, 0, c);
                        let new = op.fold_f64(cur, operand);
                        tc.rt.dsm.write(s.region, 0, new, c);
                        new
                    })
                })
            }
        }
    }

    /// Convenience: `#pragma omp atomic  x += v`.
    pub fn atomic_add_f64(&self, s: &SharedScalar<f64>, v: f64) -> f64 {
        self.atomic_f64(s, ReduceOp::Sum, v)
    }

    /// `reduction(op: var)` clause: every thread contributes `v`; all
    /// threads receive the combined value. Parade mode: node-local combine
    /// then `MPI_Allreduce` (§4.2). Baseline: DSM lock + shared accumulator
    /// then barrier.
    pub fn reduce_f64(&self, op: ReduceOp, v: f64) -> f64 {
        match self.rt.mode {
            ProtocolMode::Parade => self.hier_f64(op, v, |total| total),
            ProtocolMode::SdsmOnly => self.sdsm_reduce_f64(op, v),
        }
    }

    pub fn reduce_f64_sum(&self, v: f64) -> f64 {
        self.reduce_f64(ReduceOp::Sum, v)
    }

    pub fn reduce_f64_max(&self, v: f64) -> f64 {
        self.reduce_f64(ReduceOp::Max, v)
    }

    /// Integer reduction.
    pub fn reduce_i64(&self, op: ReduceOp, v: i64) -> i64 {
        match self.rt.mode {
            ProtocolMode::Parade => self.hier_i64(op, v, |total| total),
            ProtocolMode::SdsmOnly => self.sdsm_reduce_i64(op, v),
        }
    }

    /// Multiple reduction variables merged into one structure and reduced
    /// with a user-defined operation (§4.2). `locals` is this thread's
    /// contribution; returns the elementwise-`op` combination (Parade mode
    /// does it in a single allreduce).
    pub fn reduce_f64s(&self, op: ReduceOp, locals: &[f64]) -> Vec<f64> {
        match self.rt.mode {
            ProtocolMode::Parade => {
                if trace::enabled() {
                    trace::begin(EventKind::OmpReduction, self.now());
                }
                // Node-local combine of the whole structure, then a single
                // allreduce for all variables at once.
                {
                    let mut st = self.rt.reduce.lock();
                    if st.count == 0 {
                        st.acc_vec.clear();
                        st.acc_vec.extend_from_slice(locals);
                    } else {
                        assert_eq!(st.acc_vec.len(), locals.len(), "mismatched reduction arity");
                        for (a, &b) in st.acc_vec.iter_mut().zip(locals) {
                            *a = op.fold_f64(*a, b);
                        }
                    }
                    st.count += 1;
                }
                self.node_barrier();
                if self.local_tid == 0 {
                    let mut acc = self.rt.reduce.lock().acc_vec.clone();
                    self.with_clock(|c| self.rt.comm.allreduce_f64s(&mut acc, op, c));
                    let mut st = self.rt.reduce.lock();
                    st.result_vec = acc;
                    st.count = 0;
                }
                self.node_barrier();
                let out = self.rt.reduce.lock().result_vec.clone();
                if trace::enabled() {
                    trace::end(EventKind::OmpReduction, self.now());
                }
                out
            }
            ProtocolMode::SdsmOnly => locals
                .iter()
                .map(|&v| self.sdsm_reduce_f64(op, v))
                .collect(),
        }
    }

    /// The hierarchical combine: node-local accumulate under the node lock,
    /// node barrier, per-node representative allreduce, `leader_apply` run
    /// once per node on the total, node barrier, everyone reads the result.
    fn hier_f64(&self, op: ReduceOp, v: f64, leader_apply: impl FnOnce(f64) -> f64) -> f64 {
        if trace::enabled() {
            trace::begin(EventKind::OmpReduction, self.now());
        }
        {
            let mut st = self.rt.reduce.lock();
            if st.count == 0 {
                st.acc_f64 = v;
            } else {
                st.acc_f64 = op.fold_f64(st.acc_f64, v);
            }
            st.count += 1;
        }
        self.node_barrier();
        if self.local_tid == 0 {
            let acc = self.rt.reduce.lock().acc_f64;
            let total = self.with_clock(|c| self.rt.comm.allreduce_f64(acc, op, c));
            let final_v = leader_apply(total);
            let mut st = self.rt.reduce.lock();
            st.result_f64 = final_v;
            st.count = 0;
        }
        self.node_barrier();
        let out = self.rt.reduce.lock().result_f64;
        if trace::enabled() {
            trace::end(EventKind::OmpReduction, self.now());
        }
        out
    }

    fn hier_i64(&self, op: ReduceOp, v: i64, leader_apply: impl FnOnce(i64) -> i64) -> i64 {
        if trace::enabled() {
            trace::begin(EventKind::OmpReduction, self.now());
        }
        {
            let mut st = self.rt.reduce.lock();
            if st.count == 0 {
                st.acc_i64 = v;
            } else {
                st.acc_i64 = op.fold_i64(st.acc_i64, v);
            }
            st.count += 1;
        }
        self.node_barrier();
        if self.local_tid == 0 {
            let acc = self.rt.reduce.lock().acc_i64;
            let total = self.with_clock(|c| self.rt.comm.allreduce_i64(acc, op, c));
            let final_v = leader_apply(total);
            let mut st = self.rt.reduce.lock();
            st.result_i64 = final_v;
            st.count = 0;
        }
        self.node_barrier();
        let out = self.rt.reduce.lock().result_i64;
        if trace::enabled() {
            trace::end(EventKind::OmpReduction, self.now());
        }
        out
    }

    /// Baseline reduction: every thread locks the distributed lock and
    /// accumulates into a DSM scratch slot (twins/diffs and page transfers
    /// included), then a full barrier publishes the result (Figure 2 left).
    fn sdsm_reduce_f64(&self, op: ReduceOp, v: f64) -> f64 {
        if trace::enabled() {
            trace::begin(EventKind::OmpReduction, self.now());
        }
        let seq = self.reduce_seq.replace(self.reduce_seq.get() + 1);
        let gen = construct_gen(self.region_no, seq);
        let slot = (gen as usize) % SLOTS;
        let lock_id = LOCK_SPACE_REDUCE + slot as u64;
        let scratch = self.rt.scratch;
        self.critical_raw(lock_id, |tc| {
            tc.with_clock(|c| {
                let g: u64 = tc.rt.dsm.read(scratch, slot * 16, c);
                if g != gen {
                    tc.rt.dsm.write(scratch, slot * 16, gen, c);
                    tc.rt.dsm.write(scratch, slot * 16 + 8, v, c);
                } else {
                    let cur: f64 = tc.rt.dsm.read(scratch, slot * 16 + 8, c);
                    tc.rt
                        .dsm
                        .write(scratch, slot * 16 + 8, op.fold_f64(cur, v), c);
                }
            })
        });
        self.barrier();
        let out = self.with_clock(|c| self.rt.dsm.read(scratch, slot * 16 + 8, c));
        if trace::enabled() {
            trace::end(EventKind::OmpReduction, self.now());
        }
        out
    }

    fn sdsm_reduce_i64(&self, op: ReduceOp, v: i64) -> i64 {
        self.sdsm_reduce_f64_bits(op, v)
    }

    fn sdsm_reduce_f64_bits(&self, op: ReduceOp, v: i64) -> i64 {
        if trace::enabled() {
            trace::begin(EventKind::OmpReduction, self.now());
        }
        let seq = self.reduce_seq.replace(self.reduce_seq.get() + 1);
        let gen = construct_gen(self.region_no, seq);
        let slot = (gen as usize) % SLOTS;
        let lock_id = LOCK_SPACE_REDUCE + slot as u64;
        let scratch = self.rt.scratch;
        self.critical_raw(lock_id, |tc| {
            tc.with_clock(|c| {
                let g: u64 = tc.rt.dsm.read(scratch, slot * 16, c);
                if g != gen {
                    tc.rt.dsm.write(scratch, slot * 16, gen, c);
                    tc.rt.dsm.write(scratch, slot * 16 + 8, v, c);
                } else {
                    let cur: i64 = tc.rt.dsm.read(scratch, slot * 16 + 8, c);
                    tc.rt
                        .dsm
                        .write(scratch, slot * 16 + 8, op.fold_i64(cur, v), c);
                }
            })
        });
        self.barrier();
        let out = self.with_clock(|c| self.rt.dsm.read(scratch, slot * 16 + 8, c));
        if trace::enabled() {
            trace::end(EventKind::OmpReduction, self.now());
        }
        out
    }

    /// `single` over a small shared scalar: the earliest thread executes
    /// `f` and the result is propagated by broadcast (Parade, Figure 3
    /// right — no barrier) or by a DSM flag + lock + full barrier
    /// (baseline, Figure 3 left). All threads return the value.
    pub fn single_f64(&self, s: &SharedScalar<f64>, f: impl FnOnce(&ThreadCtx) -> f64) -> f64 {
        let out = self.single_update(&[*s], |tc| vec![f(tc)]);
        out[0]
    }

    /// Generalized `single` over several small shared scalars: the
    /// executing thread's `f` returns the new values in order; they are
    /// propagated per the active mode (broadcast / DSM flag + barrier).
    /// Every thread returns the propagated values.
    pub fn single_update(
        &self,
        scalars: &[SharedScalar<f64>],
        f: impl FnOnce(&ThreadCtx) -> Vec<f64>,
    ) -> Vec<f64> {
        let seq = self.single_seq.replace(self.single_seq.get() + 1);
        let gen = construct_gen(self.region_no, seq);
        let slot = (gen as usize) % SLOTS;
        if trace::enabled() {
            trace::begin(EventKind::OmpSingle, self.now());
        }
        let out = match self.rt.mode {
            ProtocolMode::Parade => {
                let mut sl = self.rt.singles[slot].lock();
                self.with_clock(|c| {
                    c.sample_compute();
                    c.sync_to(sl.release_at);
                });
                if sl.done_gen != gen {
                    let mut buf = vec![0.0f64; scalars.len()];
                    if self.rt.node == 0 {
                        let vals = f(self);
                        assert_eq!(vals.len(), scalars.len(), "single value arity");
                        for (s, v) in scalars.iter().zip(&vals) {
                            self.rt.small().write_f64(s.small, 0, *v);
                        }
                        buf.copy_from_slice(&vals);
                    }
                    self.with_clock(|c| self.rt.comm.bcast_f64s(0, &mut buf, c));
                    if self.rt.node != 0 {
                        for (s, v) in scalars.iter().zip(&buf) {
                            self.rt.small().write_f64(s.small, 0, *v);
                        }
                    }
                    sl.done_gen = gen;
                }
                sl.release_at = self.with_clock(|c| c.now());
                drop(sl);
                scalars
                    .iter()
                    .map(|s| self.rt.small().read_f64(s.small, 0))
                    .collect()
            }
            ProtocolMode::SdsmOnly => {
                let lock_id = LOCK_SPACE_SINGLE + slot as u64;
                let flags = self.rt.flags;
                {
                    let mut sl = self.rt.singles[slot].lock();
                    self.with_clock(|c| {
                        c.sample_compute();
                        c.sync_to(sl.release_at);
                    });
                    if sl.done_gen != gen {
                        self.with_clock(|c| self.rt.dsm.lock_acquire(lock_id, c));
                        let flag: u64 = self.with_clock(|c| self.rt.dsm.read(flags, slot * 8, c));
                        if flag != gen {
                            let vals = f(self);
                            assert_eq!(vals.len(), scalars.len(), "single value arity");
                            self.with_clock(|c| {
                                for (s, v) in scalars.iter().zip(&vals) {
                                    self.rt.dsm.write(s.region, 0, *v, c);
                                }
                                self.rt.dsm.write(flags, slot * 8, gen, c);
                            });
                        }
                        self.with_clock(|c| self.rt.dsm.lock_release(lock_id, c));
                        sl.done_gen = gen;
                    }
                    sl.release_at = self.with_clock(|c| c.now());
                }
                // Conventional lowering needs the barrier for consistency.
                self.barrier();
                scalars
                    .iter()
                    .map(|s| self.with_clock(|c| self.rt.dsm.read(s.region, 0, c)))
                    .collect()
            }
        };
        if trace::enabled() {
            trace::end(EventKind::OmpSingle, self.now());
        }
        out
    }

    /// Store to a shared scalar from *inside* a sanctioned update construct
    /// (the body of a `single` or an analyzable `critical`): the construct
    /// itself propagates the value, so this writes only the local
    /// representation (the node's update-protocol copy in Parade mode, the
    /// DSM page in the baseline — where the caller already holds the
    /// construct's lock).
    pub fn scalar_set_in_construct(&self, s: &SharedScalar<f64>, v: f64) {
        match self.rt.mode {
            ProtocolMode::Parade => self.rt.small().write_f64(s.small, 0, v),
            ProtocolMode::SdsmOnly => self.with_clock(|c| self.rt.dsm.write(s.region, 0, v, c)),
        }
    }

    /// `single nowait` with no data propagation: executed by the earliest
    /// thread of the master node only (e.g. progress printing).
    pub fn single_plain(&self, f: impl FnOnce(&ThreadCtx)) {
        let seq = self.single_seq.replace(self.single_seq.get() + 1);
        if self.rt.node != 0 {
            return;
        }
        let gen = construct_gen(self.region_no, seq);
        let slot = (gen as usize) % SLOTS;
        let mut sl = self.rt.singles[slot].lock();
        if sl.done_gen != gen {
            f(self);
            sl.done_gen = gen;
        }
    }

    /// `master` directive: only the global master thread executes.
    pub fn master(&self, f: impl FnOnce(&ThreadCtx)) {
        if self.thread_num() == 0 {
            f(self);
        }
    }
}

/// Evenly partition `range` into `n` contiguous blocks; return block `i`.
pub fn partition(range: Range<usize>, n: usize, i: usize) -> Range<usize> {
    let len = range.end.saturating_sub(range.start);
    let q = len / n;
    let r = len % n;
    let start = range.start + i * q + i.min(r);
    let size = q + usize::from(i < r);
    start..(start + size)
}

enum DynPolicy {
    Fixed(usize),
    Guided(usize),
}

/// Iterator over a thread's `schedule(static, chunk)` chunks.
pub struct StaticChunks {
    next: usize,
    end: usize,
    stride: usize,
    chunk: usize,
}

impl Iterator for StaticChunks {
    type Item = Range<usize>;

    fn next(&mut self) -> Option<Range<usize>> {
        if self.next >= self.end {
            return None;
        }
        let start = self.next;
        let stop = (start + self.chunk).min(self.end);
        self.next += self.stride;
        Some(start..stop)
    }
}

/// A shared vector bound to a thread context for ergonomic access.
pub struct BoundVec<'t, T: Pod> {
    tc: &'t ThreadCtx,
    v: SharedVec<T>,
}

impl<'t, T: Pod> BoundVec<'t, T> {
    pub fn len(&self) -> usize {
        self.v.len()
    }

    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    pub fn get(&self, i: usize) -> T {
        self.tc.get(&self.v, i)
    }

    pub fn set(&self, i: usize, val: T) {
        self.tc.set(&self.v, i, val)
    }

    pub fn read_into(&self, first: usize, out: &mut [T]) {
        self.tc.read_into(&self.v, first, out)
    }

    pub fn write_from(&self, first: usize, src: &[T]) {
        self.tc.write_from(&self.v, first, src)
    }
}

/// Scalar primitives supported by [`SharedScalar`] fast reads.
pub trait ScalarPrim: Pod {
    fn small_read(reg: &parade_dsm::SmallRegistry, s: &SharedScalar<Self>) -> Self;
}

impl ScalarPrim for f64 {
    fn small_read(reg: &parade_dsm::SmallRegistry, s: &SharedScalar<f64>) -> f64 {
        reg.read_f64(s.small, 0)
    }
}

impl ScalarPrim for i64 {
    fn small_read(reg: &parade_dsm::SmallRegistry, s: &SharedScalar<i64>) -> i64 {
        reg.read_i64(s.small, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_exactly_without_overlap() {
        for (len, n) in [(10, 3), (0, 4), (7, 7), (5, 8), (100, 1)] {
            let mut covered = Vec::new();
            for i in 0..n {
                let r = partition(3..3 + len, n, i);
                covered.extend(r);
            }
            assert_eq!(covered, (3..3 + len).collect::<Vec<_>>(), "len={len} n={n}");
        }
    }

    #[test]
    fn partition_is_balanced() {
        for i in 0..4 {
            let r = partition(0..10, 4, i);
            let sz = r.end - r.start;
            assert!((2..=3).contains(&sz));
        }
    }

    #[test]
    fn static_chunks_interleave() {
        // 2 threads, chunk 2, range 0..10: thread 0 gets [0..2, 4..6, 8..10].
        let it = StaticChunks {
            next: 0,
            end: 10,
            stride: 4,
            chunk: 2,
        };
        let got: Vec<_> = it.collect();
        assert_eq!(got, vec![0..2, 4..6, 8..10]);
    }
}
