//! # parade-core — the ParADE runtime API
//!
//! The programming interface of the ParADE environment (paper §3–§5): an
//! OpenMP-style fork-join model executing on a simulated SMP cluster with a
//! **hybrid execution model** underneath — message-passing collectives for
//! synchronization and work-sharing directives over small data, and the
//! HLRC software DSM for everything else. The same program runs under the
//! conventional-SDSM baseline mode for apples-to-apples comparison
//! (`ProtocolMode::SdsmOnly`).
//!
//! ```
//! use parade_core::Cluster;
//! use parade_net::{NetProfile, TimeSource};
//!
//! let cluster = Cluster::builder()
//!     .nodes(2)
//!     .threads_per_node(2)
//!     .net(NetProfile::zero())
//!     .time(TimeSource::Manual)
//!     .build()
//!     .unwrap();
//! let pi_ish = cluster.run(|g| {
//!     g.parallel(|tc| {
//!         let mut local = 0.0;
//!         for i in tc.for_static(0..100_000) {
//!             let x = (i as f64 + 0.5) / 100_000.0;
//!             local += 4.0 / (1.0 + x * x);
//!         }
//!         tc.reduce_f64_sum(local) / 100_000.0
//!     })
//! });
//! assert!((pi_ish - std::f64::consts::PI).abs() < 1e-4);
//! ```

mod ctx;
mod report;
mod runtime;
mod shared;
mod tasking;
mod team;

pub use ctx::{partition, BoundVec, ScalarPrim, StaticChunks, ThreadCtx};
pub use report::StatsReport;
pub use shared::{Pod, SharedScalar, SharedVec};
pub use tasking::{TaskFn, TaskScope};
pub use team::{Cluster, ClusterBuilder, FailedRun, MasterCtx, RunReport};
// Moved into parade-net (the MPI layer's shared-memory combine uses it
// too); re-exported here so `parade_core::VBarrier` keeps working.
pub use parade_net::VBarrier;

// Re-exports so downstream code needs only this crate for common use.
pub use parade_cluster::{ClusterConfig, ExecConfig, NodePanic, ProtocolMode};
pub use parade_dsm::ProtoSelect;
pub use parade_mpi::ReduceOp;
pub use parade_net::{FabricError, NetProfile, NodeTraffic, TimeSource, VTime};
pub use parade_tasks::{SchedConfig, StealStrategy, TaskCtx, TaskDesc};
pub use parade_trace::TraceReport;
