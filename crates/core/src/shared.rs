//! Typed handles to shared data.
//!
//! [`SharedVec`] is a large array living in the paged DSM (HLRC, invalidate
//! protocol). [`SharedScalar`] is a small variable kept consistent by the
//! message-passing update protocol in `Parade` mode and by DSM pages in the
//! `SdsmOnly` baseline — the dual representation realizes the paper's
//! size-based protocol classification (§3, §5.2.1).
//!
//! Handles are plain `Copy` data so parallel-region closures can capture
//! them; they resolve against the executing node's own DSM instance.

use parade_dsm::{RegionHandle, SmallHandle};

/// Marker for types that can live in shared memory: plain-old-data with a
/// fixed byte representation.
///
/// # Safety
/// Implementors must be `Copy`, have no padding requirements beyond their
/// natural alignment (≤ 8), and tolerate byte-level copying.
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

// SAFETY: primitive scalars are plain old data.
unsafe impl Pod for f64 {}
unsafe impl Pod for f32 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u8 {}

/// A shared array of `T` in the paged DSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedVec<T: Pod> {
    pub(crate) region: RegionHandle,
    pub(crate) len: usize,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Pod> SharedVec<T> {
    pub(crate) fn new(region: RegionHandle, len: usize) -> Self {
        debug_assert!(len * std::mem::size_of::<T>() <= region.len);
        SharedVec {
            region,
            len,
            _marker: std::marker::PhantomData,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn region(&self) -> RegionHandle {
        self.region
    }
}

/// A small shared scalar (or tiny struct) with dual representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedScalar<T: Pod> {
    /// Plain per-node storage driven by collectives (Parade mode).
    pub(crate) small: SmallHandle,
    /// Paged storage (SdsmOnly baseline mode).
    pub(crate) region: RegionHandle,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Pod> SharedScalar<T> {
    pub(crate) fn new(small: SmallHandle, region: RegionHandle) -> Self {
        SharedScalar {
            small,
            region,
            _marker: std::marker::PhantomData,
        }
    }

    pub fn small(&self) -> SmallHandle {
        self.small
    }

    pub fn region(&self) -> RegionHandle {
        self.region
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_copy_and_small() {
        // Handles must stay cheap: they are captured by every region
        // closure and copied into every thread.
        assert!(std::mem::size_of::<SharedVec<f64>>() <= 48);
        assert!(std::mem::size_of::<SharedScalar<f64>>() <= 64);
        fn assert_copy<T: Copy>() {}
        assert_copy::<SharedVec<f64>>();
        assert_copy::<SharedScalar<i64>>();
    }

    #[test]
    fn shared_vec_len() {
        let r = RegionHandle {
            id: 0,
            offset: 0,
            len: 80,
        };
        let v = SharedVec::<f64>::new(r, 10);
        assert_eq!(v.len(), 10);
        assert!(!v.is_empty());
    }
}
