//! The fork-join team: user-facing [`Cluster`], the master context, and the
//! worker-node command loop.
//!
//! Execution model (paper §4.1): the master thread (node 0, thread 0) runs
//! the serial program; a `parallel` directive forks the region body onto
//! every computational thread of every node and joins at an implicit
//! hierarchical barrier. Worker nodes sit in a command loop: commands are
//! broadcast from the master through the MPI layer (binomial tree), so fork
//! latency scales as ⌈log₂ P⌉ like the rest of the collectives.

use std::sync::Arc;

use parade_net::sync::Mutex;
use parade_net::Bytes;

use parade_cluster::{
    launch_result, ClusterConfig, ClusterReport, ExecConfig, NodeEnv, NodePanic, ProtocolMode,
};
use parade_mpi::datatype::{Reader, Writer};
use parade_net::{NetProfile, TimeSource, VClock, VTime};
use parade_trace::{self as trace, TraceReport};

use crate::ctx::ThreadCtx;
use crate::runtime::{run_region, spawn_pool, NodeRt, RegionFn};
use crate::shared::{Pod, SharedScalar, SharedVec};

/// Commands broadcast from the master to the worker command loops.
enum Cmd {
    AllocRegion { len: usize },
    AllocScalar { len: usize },
    ScalarSet { small_id: u32, bytes: Vec<u8> },
    Fork { region_idx: usize },
    Shutdown,
}

impl Cmd {
    fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        match self {
            Cmd::AllocRegion { len } => {
                w.u8(1).u64(*len as u64);
            }
            Cmd::AllocScalar { len } => {
                w.u8(2).u64(*len as u64);
            }
            Cmd::ScalarSet { small_id, bytes } => {
                w.u8(3).u32(*small_id).lp_bytes(bytes);
            }
            Cmd::Fork { region_idx } => {
                w.u8(4).u64(*region_idx as u64);
            }
            Cmd::Shutdown => {
                w.u8(5);
            }
        }
        w.finish()
    }

    fn decode(b: &[u8]) -> Cmd {
        let mut r = Reader::new(b);
        match r.u8() {
            1 => Cmd::AllocRegion {
                len: r.u64() as usize,
            },
            2 => Cmd::AllocScalar {
                len: r.u64() as usize,
            },
            3 => Cmd::ScalarSet {
                small_id: r.u32(),
                bytes: r.lp_bytes().to_vec(),
            },
            4 => Cmd::Fork {
                region_idx: r.u64() as usize,
            },
            5 => Cmd::Shutdown,
            k => unreachable!("bad command kind {k}"),
        }
    }
}

/// Cross-node shared state (in-process): the region-closure registry.
/// Closures cannot travel over the simulated wire; the *timing* of fork
/// distribution comes from the broadcast command message, while the
/// closure itself is picked up from this registry by index.
#[derive(Default)]
struct Registry {
    regions: Mutex<Vec<Arc<RegionFn>>>,
}

impl Registry {
    fn push(&self, f: Arc<RegionFn>) -> usize {
        let mut v = self.regions.lock();
        v.push(f);
        v.len() - 1
    }

    fn get(&self, idx: usize) -> Arc<RegionFn> {
        Arc::clone(&self.regions.lock()[idx])
    }
}

/// Outcome report of a cluster run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The master's final virtual time — the paper's "execution time".
    pub exec_time: VTime,
    /// Final virtual time of each node's main thread.
    pub node_times: Vec<VTime>,
    /// Virtual time each node's main thread attributed to computation.
    pub node_compute: Vec<VTime>,
    /// Virtual time each node's main thread attributed to communication
    /// and synchronization waits.
    pub node_comm: Vec<VTime>,
    /// Per-node and aggregate DSM/network counters.
    pub cluster: ClusterReport,
    /// Virtual-time breakdown per construct per node, when the run was
    /// traced (`PARADE_TRACE` set, or an ambient session already active).
    pub trace: Option<TraceReport>,
}

impl RunReport {
    pub fn exec_secs(&self) -> f64 {
        self.exec_time.as_secs_f64()
    }
}

/// A run that did not complete. A fabric fail-stop (retry-budget
/// exhaustion on a dead link) surfaces here as the panics of every node
/// caught blocked on that link; `cluster.fabric_errors` names each dead
/// link. Produced by [`Cluster::try_run_with_report`].
#[derive(Debug)]
pub struct FailedRun {
    /// Which node programs panicked, with their messages.
    pub panics: Vec<NodePanic>,
    /// Counters salvaged from the dead run.
    pub cluster: ClusterReport,
}

impl FailedRun {
    /// Every retry-budget exhaustion recorded before the fail-stop.
    pub fn fabric_errors(&self) -> &[parade_net::FabricError] {
        &self.cluster.fabric_errors
    }

    /// Was this a fabric fail-stop (as opposed to a plain program bug)?
    pub fn is_fabric_death(&self) -> bool {
        !self.cluster.fabric_errors.is_empty()
    }
}

impl std::fmt::Display for FailedRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cluster run failed: {} node(s) panicked",
            self.panics.len()
        )?;
        if let Some(p) = self.panics.first() {
            write!(f, " (node {}: {})", p.node, p.message)?;
        }
        if let Some(e) = self.cluster.fabric_errors.first() {
            write!(f, "; {e}")?;
        }
        Ok(())
    }
}

/// A simulated SMP cluster ready to run ParADE programs.
///
/// Each [`Cluster::run`] call performs a full launch: fabric, DSM
/// instances, communication threads, compute-thread pools.
#[derive(Debug, Clone)]
pub struct Cluster {
    cfg: ClusterConfig,
}

impl Cluster {
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder {
            cfg: ClusterConfig::default(),
        }
    }

    pub fn from_config(cfg: ClusterConfig) -> Self {
        Cluster { cfg }
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Run `master` as the serial program of node 0, returning its result.
    pub fn run<R, F>(&self, master: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut MasterCtx) -> R + Send + 'static,
    {
        self.run_with_report(master).0
    }

    /// Run and also return virtual times and protocol counters.
    pub fn run_with_report<R, F>(&self, master: F) -> (R, RunReport)
    where
        R: Send + 'static,
        F: FnOnce(&mut MasterCtx) -> R + Send + 'static,
    {
        match self.try_run_with_report(master) {
            Ok(out) => out,
            Err(f) => panic!("{f}"),
        }
    }

    /// Failure-tolerant run: node-program panics — including the panics a
    /// fabric fail-stop induces in blocked receives — are collected into a
    /// [`FailedRun`] instead of propagated, and the fabric and
    /// communication threads are torn down in every path. This is how the
    /// serving layer survives a job's node death and re-homes it.
    ///
    /// Intended for single-thread-per-node jobs; with `threads_per_node >
    /// 1` a failed run's surviving pool threads are detached rather than
    /// joined (the unwind skips the pool join), so they linger until
    /// process exit.
    pub fn try_run_with_report<R, F>(&self, master: F) -> Result<(R, RunReport), Box<FailedRun>>
    where
        R: Send + 'static,
        F: FnOnce(&mut MasterCtx) -> R + Send + 'static,
    {
        // `PARADE_TRACE=<path>` records the run and writes a Chrome
        // trace_event file there. `start` returns None when another session
        // is already active (e.g. a test harness tracing us from outside);
        // that session keeps collecting our events and we leave it alone.
        let trace_path = std::env::var("PARADE_TRACE").ok().filter(|p| !p.is_empty());
        let session = trace_path
            .as_ref()
            .and_then(|_| trace::start(trace::TraceConfig::from_env()));
        let registry = Arc::new(Registry::default());
        let master_cell = Arc::new(Mutex::new(Some(master)));
        let reg2 = Arc::clone(&registry);
        let launched = launch_result(self.cfg.clone(), move |env: NodeEnv| {
            let rt = NodeRt::new(
                Arc::clone(&env.dsm),
                Arc::clone(&env.comm),
                env.node,
                env.nnodes,
                env.cfg.threads_per_node(),
                env.cfg.protocol,
                env.cfg.time_source(env.node),
                env.cfg.task_scheduler,
            );
            let pool_handles = spawn_pool(&rt);
            let mut clock = env.new_clock();
            let result = if env.node == 0 {
                let f = master_cell
                    .lock()
                    .take()
                    .expect("master function already taken");
                let mut mc = MasterCtx {
                    rt: Arc::clone(&rt),
                    clock: VClock::new(env.cfg.time_source(0)),
                    registry: Arc::clone(&reg2),
                };
                let r = f(&mut mc);
                mc.bcast_cmd(&Cmd::Shutdown);
                clock = mc.clock;
                Some(r)
            } else {
                worker_loop(&rt, &reg2, &mut clock);
                None
            };
            rt.shutdown_pool();
            for h in pool_handles {
                h.join().expect("pool thread panicked");
            }
            (result, clock.now(), clock.compute_time(), clock.comm_time())
        });
        // Finish the trace session in every path; a failed run's events
        // are still worth the file.
        let trace_report = session.map(|s| {
            let data = s.finish();
            if let Some(path) = &trace_path {
                if let Err(e) = std::fs::write(path, data.chrome_json()) {
                    eprintln!("parade: cannot write trace to {path}: {e}");
                }
            }
            data.report()
        });
        let (results, cluster_report) = match launched {
            Ok(out) => out,
            Err(f) => {
                // Boxed for the same reason `launch_result` boxes its
                // error: the salvaged report dominates the variant size.
                return Err(Box::new(FailedRun {
                    panics: f.panics,
                    cluster: f.report,
                }));
            }
        };
        let mut r = None;
        let mut node_times = Vec::new();
        let mut node_compute = Vec::new();
        let mut node_comm = Vec::new();
        for (res, t, cp, cm) in results {
            if let Some(v) = res {
                r = Some(v);
            }
            node_times.push(t);
            node_compute.push(cp);
            node_comm.push(cm);
        }
        let exec_time = node_times[0];
        Ok((
            r.expect("master result"),
            RunReport {
                exec_time,
                node_times,
                node_compute,
                node_comm,
                cluster: cluster_report,
                trace: trace_report,
            },
        ))
    }
}

/// Builder for [`Cluster`].
pub struct ClusterBuilder {
    cfg: ClusterConfig,
}

impl ClusterBuilder {
    pub fn nodes(mut self, n: usize) -> Self {
        self.cfg.nodes = n;
        self
    }

    pub fn threads_per_node(mut self, t: usize) -> Self {
        self.cfg.exec = ExecConfig::Custom {
            threads_per_node: t,
            comm: self.cfg.exec.comm_costs(),
        };
        self
    }

    pub fn exec(mut self, e: ExecConfig) -> Self {
        self.cfg.exec = e;
        self
    }

    pub fn protocol(mut self, p: ProtocolMode) -> Self {
        self.cfg.protocol = p;
        self
    }

    pub fn net(mut self, n: NetProfile) -> Self {
        self.cfg.net = n;
        self
    }

    pub fn time(mut self, t: TimeSource) -> Self {
        self.cfg.time = t;
        self
    }

    pub fn pool_bytes(mut self, b: usize) -> Self {
        self.cfg.pool_bytes = b;
        self
    }

    /// Inject faults into the fabric (see `parade_net::ChaosProfile`).
    pub fn chaos(mut self, c: parade_net::ChaosProfile) -> Self {
        self.cfg.chaos = c;
        self
    }

    /// Toggle the two-level SMP-aware collectives (tree barrier + leader
    /// election); on by default, off reverts to the flat algorithms.
    pub fn hierarchical_collectives(mut self, on: bool) -> Self {
        self.cfg.hierarchical_collectives = on;
        self
    }

    /// Fabric nodes per physical SMP chassis for the collective topology.
    pub fn smp_width(mut self, w: usize) -> Self {
        self.cfg.smp_width = w;
        self
    }

    /// Task-scheduler knobs (steal strategy, victim fanout, grain, seed).
    pub fn task_scheduler(mut self, s: parade_tasks::SchedConfig) -> Self {
        self.cfg.task_scheduler = s;
        self
    }

    /// Lock shards for page bookkeeping (`<= 1` restores one global lock).
    pub fn page_shards(mut self, n: usize) -> Self {
        self.cfg.page_shards = n;
        self
    }

    /// Toggle the per-thread stride prefetcher (on by default).
    pub fn stride_prefetch(mut self, on: bool) -> Self {
        self.cfg.stride_prefetch = on;
        self
    }

    /// Pages fetched ahead per confirmed stride.
    pub fn prefetch_depth(mut self, d: usize) -> Self {
        self.cfg.prefetch_depth = d;
        self
    }

    /// Invalidate-vs-update protocol selection (adaptive or forced).
    pub fn proto_select(mut self, p: parade_dsm::ProtoSelect) -> Self {
        self.cfg.proto_select = p;
        self
    }

    pub fn config(mut self, cfg: ClusterConfig) -> Self {
        self.cfg = cfg;
        self
    }

    pub fn build(self) -> Result<Cluster, String> {
        if self.cfg.nodes == 0 {
            return Err("cluster needs at least one node".into());
        }
        if self.cfg.threads_per_node() == 0 {
            return Err("cluster needs at least one thread per node".into());
        }
        Ok(Cluster { cfg: self.cfg })
    }
}

fn worker_loop(rt: &Arc<NodeRt>, registry: &Registry, clock: &mut VClock) {
    loop {
        let mut b = Bytes::new();
        rt.comm.bcast_bytes(0, &mut b, clock);
        match Cmd::decode(&b) {
            Cmd::AllocRegion { len } => {
                rt.dsm.alloc_region(len).expect("worker allocation failed");
            }
            Cmd::AllocScalar { len } => {
                rt.dsm.alloc_small(len);
                rt.dsm.alloc_region(len).expect("worker allocation failed");
            }
            Cmd::ScalarSet { small_id, bytes } => {
                let h = parade_dsm::SmallHandle {
                    id: small_id,
                    len: bytes.len(),
                };
                rt.small().write_bytes(h, &bytes);
            }
            Cmd::Fork { region_idx } => {
                let f = registry.get(region_idx);
                let f2 = Arc::clone(&f);
                run_region(rt, &f, clock, move |tc| f2(tc));
            }
            Cmd::Shutdown => break,
        }
    }
}

/// The serial (master) context: allocation, serial shared-memory access,
/// and the `parallel` directive.
pub struct MasterCtx {
    rt: Arc<NodeRt>,
    clock: VClock,
    registry: Arc<Registry>,
}

impl MasterCtx {
    fn bcast_cmd(&mut self, cmd: &Cmd) {
        let mut b = cmd.encode();
        self.rt.comm.bcast_bytes(0, &mut b, &mut self.clock);
    }

    pub fn nodes(&self) -> usize {
        self.rt.nnodes
    }

    pub fn threads_per_node(&self) -> usize {
        self.rt.tpn
    }

    pub fn num_threads(&self) -> usize {
        self.rt.total_threads()
    }

    pub fn mode(&self) -> ProtocolMode {
        self.rt.mode
    }

    /// The master's current virtual time.
    pub fn now(&mut self) -> VTime {
        self.clock.sample_compute();
        self.clock.now()
    }

    /// Charge explicit compute cost (deterministic `Manual` time source).
    pub fn charge(&mut self, d: VTime) {
        self.clock.charge(d);
    }

    // ---- allocation (master-driven, broadcast to all nodes) ---------------

    /// Allocate a shared vector of `n` elements in the paged DSM.
    pub fn alloc_vec<T: Pod>(&mut self, n: usize) -> SharedVec<T> {
        let len = n * std::mem::size_of::<T>();
        self.bcast_cmd(&Cmd::AllocRegion { len });
        let h = self.rt.dsm.alloc_region(len).expect("allocation failed");
        SharedVec::new(h, n)
    }

    pub fn alloc_f64(&mut self, n: usize) -> SharedVec<f64> {
        self.alloc_vec(n)
    }

    pub fn alloc_i64(&mut self, n: usize) -> SharedVec<i64> {
        self.alloc_vec(n)
    }

    /// Allocate a small shared scalar (dual representation: update-protocol
    /// object + DSM page for the baseline mode).
    pub fn alloc_scalar<T: Pod>(&mut self) -> SharedScalar<T> {
        let len = std::mem::size_of::<T>().max(8);
        self.bcast_cmd(&Cmd::AllocScalar { len });
        let small = self.rt.dsm.alloc_small(len);
        let region = self.rt.dsm.alloc_region(len).expect("allocation failed");
        SharedScalar::new(small, region)
    }

    pub fn alloc_scalar_f64(&mut self) -> SharedScalar<f64> {
        self.alloc_scalar()
    }

    pub fn alloc_scalar_i64(&mut self) -> SharedScalar<i64> {
        self.alloc_scalar()
    }

    // ---- serial shared access ----------------------------------------------

    pub fn get<T: Pod>(&mut self, v: &SharedVec<T>, i: usize) -> T {
        self.rt
            .dsm
            .read(v.region, i * std::mem::size_of::<T>(), &mut self.clock)
    }

    pub fn set<T: Pod>(&mut self, v: &SharedVec<T>, i: usize, val: T) {
        self.rt
            .dsm
            .write(v.region, i * std::mem::size_of::<T>(), val, &mut self.clock)
    }

    pub fn read_into<T: Pod>(&mut self, v: &SharedVec<T>, first: usize, out: &mut [T]) {
        self.rt
            .dsm
            .read_slice(v.region, first, out, &mut self.clock)
    }

    pub fn write_from<T: Pod>(&mut self, v: &SharedVec<T>, first: usize, src: &[T]) {
        self.rt
            .dsm
            .write_slice(v.region, first, src, &mut self.clock)
    }

    /// Barrier-time checkpoint: snapshot a shared vector's bytes through
    /// the coherent read path. Taken between parallel regions, the
    /// snapshot is a consistent cut a re-homed job can be restored from.
    pub fn checkpoint<T: Pod>(&mut self, v: &SharedVec<T>) -> Vec<u8> {
        self.rt.dsm.checkpoint_region(v.region, &mut self.clock)
    }

    /// Restore a shared vector from a [`MasterCtx::checkpoint`] snapshot.
    pub fn restore<T: Pod>(&mut self, v: &SharedVec<T>, snap: &[u8]) {
        self.rt.dsm.restore_region(v.region, snap, &mut self.clock)
    }

    /// Serial scalar write. In Parade mode this is an eager update-protocol
    /// push (a broadcast command); in the baseline it is a plain DSM write
    /// made visible by the next fork barrier.
    pub fn scalar_set_f64(&mut self, s: &SharedScalar<f64>, v: f64) {
        match self.rt.mode {
            ProtocolMode::Parade => {
                self.rt.small().write_f64(s.small, 0, v);
                self.bcast_cmd(&Cmd::ScalarSet {
                    small_id: s.small.id,
                    bytes: v.to_le_bytes().to_vec(),
                });
            }
            ProtocolMode::SdsmOnly => {
                self.rt.dsm.write(s.region, 0, v, &mut self.clock);
            }
        }
    }

    /// Serial scalar read.
    pub fn scalar_get_f64(&mut self, s: &SharedScalar<f64>) -> f64 {
        match self.rt.mode {
            ProtocolMode::Parade => self.rt.small().read_f64(s.small, 0),
            ProtocolMode::SdsmOnly => self.rt.dsm.read(s.region, 0, &mut self.clock),
        }
    }

    // ---- the parallel directive ---------------------------------------------

    /// Fork a parallel region across every computational thread of the
    /// cluster; returns the master thread's result after the join barrier.
    pub fn parallel<R, F>(&mut self, f: F) -> R
    where
        F: Fn(&ThreadCtx) -> R + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let f_pool = Arc::clone(&f);
        let erased: Arc<RegionFn> = Arc::new(move |tc: &ThreadCtx| {
            f_pool(tc);
        });
        let idx = self.registry.push(erased);
        self.bcast_cmd(&Cmd::Fork { region_idx: idx });
        let f_lead = Arc::clone(&f);
        let rt = Arc::clone(&self.rt);
        let reg = self.registry.get(idx);
        run_region(&rt, &reg, &mut self.clock, move |tc| f_lead(tc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cluster(nodes: usize, tpn: usize) -> Cluster {
        Cluster::builder()
            .nodes(nodes)
            .threads_per_node(tpn)
            .net(NetProfile::zero())
            .time(TimeSource::Manual)
            .pool_bytes(256 * parade_dsm::PAGE_SIZE)
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_region_runs_all_threads() {
        let c = test_cluster(2, 2);
        let n = c.run(|g| {
            let counter = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let c2 = std::sync::Arc::clone(&counter);
            g.parallel(move |_tc| {
                c2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
            counter.load(std::sync::atomic::Ordering::SeqCst)
        });
        assert_eq!(n, 4);
    }

    #[test]
    fn quickstart_sum() {
        let c = test_cluster(2, 2);
        let sum = c.run(|g| {
            let xs = g.alloc_f64(1024);
            g.parallel(move |tc| {
                let v = tc.bind_f64(&xs);
                for i in tc.for_static(0..1024) {
                    v.set(i, i as f64);
                }
                tc.barrier();
                let mut local = 0.0;
                for i in tc.for_static(0..1024) {
                    local += v.get(i);
                }
                tc.reduce_f64_sum(local)
            })
        });
        assert_eq!(sum, (0..1024).sum::<usize>() as f64);
    }

    #[test]
    fn serial_writes_visible_in_region_and_back() {
        let c = test_cluster(3, 1);
        let out = c.run(|g| {
            let xs = g.alloc_i64(100);
            for i in 0..100 {
                g.set(&xs, i, i as i64);
            }
            g.parallel(move |tc| {
                for i in tc.for_static(0..100) {
                    let v = tc.get(&xs, i);
                    tc.set(&xs, i, v * 2);
                }
            });
            let mut sum = 0;
            for i in 0..100 {
                sum += g.get(&xs, i);
            }
            sum
        });
        assert_eq!(out, 2 * (0..100).sum::<i64>());
    }

    #[test]
    fn multiple_regions_and_allocs() {
        let c = test_cluster(2, 2);
        let out = c.run(|g| {
            let a = g.alloc_f64(16);
            g.parallel(move |tc| tc.par_for(0..16, |i| tc.set(&a, i, 1.0)));
            let b = g.alloc_f64(16);
            g.parallel(move |tc| {
                tc.par_for(0..16, |i| {
                    let v = tc.get(&a, i);
                    tc.set(&b, i, v + 1.0)
                })
            });
            let mut s = 0.0;
            for i in 0..16 {
                s += g.get(&b, i);
            }
            s
        });
        assert_eq!(out, 32.0);
    }

    #[test]
    fn scalar_roundtrip_both_modes() {
        for mode in [ProtocolMode::Parade, ProtocolMode::SdsmOnly] {
            let c = Cluster::builder()
                .nodes(2)
                .threads_per_node(2)
                .protocol(mode)
                .net(NetProfile::zero())
                .time(TimeSource::Manual)
                .pool_bytes(256 * parade_dsm::PAGE_SIZE)
                .build()
                .unwrap();
            let got = c.run(|g| {
                let s = g.alloc_scalar_f64();
                g.scalar_set_f64(&s, 2.5);
                let sums = g.parallel(move |tc| {
                    let base = tc.scalar_get(&s);
                    tc.reduce_f64_sum(base)
                });
                (g.scalar_get_f64(&s), sums)
            });
            assert_eq!(got.0, 2.5, "mode {mode:?}");
            assert_eq!(got.1, 10.0, "mode {mode:?}");
        }
    }

    #[test]
    fn atomic_updates_scalar_identically_in_both_modes() {
        for mode in [ProtocolMode::Parade, ProtocolMode::SdsmOnly] {
            let c = Cluster::builder()
                .nodes(2)
                .threads_per_node(2)
                .protocol(mode)
                .net(NetProfile::zero())
                .time(TimeSource::Manual)
                .pool_bytes(256 * parade_dsm::PAGE_SIZE)
                .build()
                .unwrap();
            let got = c.run(move |g| {
                let s = g.alloc_scalar_f64();
                g.scalar_set_f64(&s, 100.0);
                g.parallel(move |tc| {
                    tc.atomic_add_f64(&s, (tc.thread_num() + 1) as f64);
                });
                g.scalar_get_f64(&s)
            });
            // 100 + 1 + 2 + 3 + 4
            assert_eq!(got, 110.0, "mode {mode:?}");
        }
    }

    #[test]
    fn single_executes_once_and_propagates() {
        for mode in [ProtocolMode::Parade, ProtocolMode::SdsmOnly] {
            let c = Cluster::builder()
                .nodes(3)
                .threads_per_node(2)
                .protocol(mode)
                .net(NetProfile::zero())
                .time(TimeSource::Manual)
                .pool_bytes(256 * parade_dsm::PAGE_SIZE)
                .build()
                .unwrap();
            let execs = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let e2 = std::sync::Arc::clone(&execs);
            let got = c.run(move |g| {
                let s = g.alloc_scalar_f64();
                g.parallel(move |tc| {
                    let v = tc.single_f64(&s, |_| {
                        e2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        42.0
                    });
                    tc.reduce_f64_sum(v)
                })
            });
            assert_eq!(got, 42.0 * 6.0, "mode {mode:?}");
            assert_eq!(
                execs.load(std::sync::atomic::Ordering::SeqCst),
                1,
                "single body must run exactly once (mode {mode:?})"
            );
        }
    }

    #[test]
    fn critical_serializes_dsm_updates() {
        let c = test_cluster(2, 2);
        let got = c.run(|g| {
            let xs = g.alloc_i64(1);
            g.parallel(move |tc| {
                for _ in 0..5 {
                    tc.critical(1, |tc| {
                        let v = tc.get(&xs, 0);
                        tc.set(&xs, 0, v + 1);
                    });
                }
            });
            g.get(&xs, 0)
        });
        assert_eq!(got, 20);
    }

    #[test]
    fn dynamic_and_guided_schedules_cover_range() {
        let c = test_cluster(2, 2);
        let got = c.run(|g| {
            let hits = g.alloc_i64(200);
            g.parallel(move |tc| {
                tc.for_dynamic(0..200, 7, |r| {
                    for i in r {
                        let v = tc.get(&hits, i);
                        tc.set(&hits, i, v + 1);
                    }
                });
            });

            g.parallel(move |tc| {
                let mut s = 0;
                for i in tc.for_static(0..200) {
                    s += tc.get(&hits, i);
                }
                tc.reduce_i64(parade_mpi::ReduceOp::Sum, s)
            })
        });
        assert_eq!(got, 200, "every iteration exactly once");
    }

    #[test]
    fn report_contains_times_and_counters() {
        let c = test_cluster(2, 1);
        let (_, report) = c.run_with_report(|g| {
            let xs = g.alloc_f64(1000);
            g.parallel(move |tc| {
                tc.par_for(0..1000, |i| tc.set(&xs, i, 1.0));
                let mut s = 0.0;
                for i in tc.for_static(0..1000) {
                    s += tc.get(&xs, i);
                }
                tc.reduce_f64_sum(s)
            });
        });
        assert_eq!(report.node_times.len(), 2);
        assert!(report.cluster.dsm_totals().barriers > 0);
    }

    #[test]
    fn master_directive_runs_on_global_master_only() {
        let c = test_cluster(2, 2);
        let got = c.run(|g| {
            let hits = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let h2 = std::sync::Arc::clone(&hits);
            g.parallel(move |tc| {
                tc.master(|_| {
                    h2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            });
            hits.load(std::sync::atomic::Ordering::SeqCst)
        });
        assert_eq!(got, 1);
    }
}
