//! [`StatsReport`] — one unified, renderable summary of a cluster run.
//!
//! Merges the three telemetry sources a run produces — virtual times from
//! [`RunReport`], DSM protocol counters and per-node fabric traffic from
//! the cluster layer, and (when traced) the per-construct virtual-time
//! breakdown from `parade-trace` — so diagnostics and benches print one
//! consistent block instead of hand-rolled `println!`s.
//!
//! JSON emission follows the `PARADE_BENCH_JSON` convention: set
//! `PARADE_STATS_JSON` to `1` (current directory) or a directory name and
//! [`StatsReport::emit_json`] writes `STATS_<label>.json` there.

use std::fmt::Write as _;

use parade_dsm::DsmStatsSnapshot;
use parade_net::{FabricError, LinkHealth, NodeTraffic, VTime};
use parade_trace::TraceReport;

use crate::team::RunReport;

/// Unified statistics for one cluster run.
#[derive(Debug, Clone)]
pub struct StatsReport {
    /// Caller-chosen run label (also names the JSON file).
    pub label: String,
    /// The master's final virtual time.
    pub exec_time: VTime,
    /// Per-node main-thread virtual times.
    pub node_times: Vec<VTime>,
    /// Per-node compute share of the main thread's virtual time.
    pub node_compute: Vec<VTime>,
    /// Per-node communication/wait share.
    pub node_comm: Vec<VTime>,
    /// Cluster-wide DSM protocol counters.
    pub dsm: DsmStatsSnapshot,
    /// Per-node fabric traffic, both directions.
    pub net: Vec<NodeTraffic>,
    /// Per-node reliable-channel counters (all quiet on a chaos-free run).
    pub link_health: Vec<LinkHealth>,
    /// First fatal link error, when a retry budget was exhausted.
    pub fabric_error: Option<FabricError>,
    /// Every fatal link error in recording order: when several links die
    /// in the same interval, each dead link is named here.
    pub fabric_errors: Vec<FabricError>,
    /// Per-construct virtual-time breakdown, when the run was traced.
    pub trace: Option<TraceReport>,
}

impl StatsReport {
    pub fn from_run(label: impl Into<String>, report: &RunReport) -> StatsReport {
        StatsReport {
            label: label.into(),
            exec_time: report.exec_time,
            node_times: report.node_times.clone(),
            node_compute: report.node_compute.clone(),
            node_comm: report.node_comm.clone(),
            dsm: report.cluster.dsm_totals(),
            net: report.cluster.net.clone(),
            link_health: report.cluster.link_health.clone(),
            fabric_error: report.cluster.fabric_error.clone(),
            fabric_errors: report.cluster.fabric_errors.clone(),
            trace: report.trace.clone(),
        }
    }

    /// Reliable-channel counters summed over nodes.
    pub fn link_health_totals(&self) -> LinkHealth {
        let mut t = LinkHealth::default();
        for h in &self.link_health {
            t.add(*h);
        }
        t
    }

    /// Plain-text block: per-node time/traffic table, non-zero DSM
    /// counters, and the trace breakdown when present.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "=== {} — exec {} over {} node(s) ===",
            self.label,
            self.exec_time,
            self.node_times.len()
        );
        let _ = writeln!(
            s,
            "{:<5} {:>12} {:>12} {:>12} {:>16} {:>16}",
            "node", "vtime", "compute", "comm", "sent msgs/bytes", "recv msgs/bytes"
        );
        for (i, t) in self.node_times.iter().enumerate() {
            let nt = self.net.get(i).copied().unwrap_or_default();
            let _ = writeln!(
                s,
                "{:<5} {:>12} {:>12} {:>12} {:>16} {:>16}",
                i,
                t.to_string(),
                self.node_compute
                    .get(i)
                    .copied()
                    .unwrap_or(VTime::ZERO)
                    .to_string(),
                self.node_comm
                    .get(i)
                    .copied()
                    .unwrap_or(VTime::ZERO)
                    .to_string(),
                format!("{}/{}", nt.sent.msgs, nt.sent.bytes),
                format!("{}/{}", nt.received.msgs, nt.received.bytes),
            );
        }
        let nonzero: Vec<String> = self
            .dsm
            .fields()
            .into_iter()
            .filter(|(_, v)| *v > 0)
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        let _ = writeln!(
            s,
            "dsm: {}",
            if nonzero.is_empty() {
                "(no protocol activity)".to_string()
            } else {
                nonzero.join(" ")
            }
        );
        let health = self.link_health_totals();
        if !health.is_quiet() {
            let fields: Vec<String> = health
                .fields()
                .into_iter()
                .filter(|(_, v)| *v > 0)
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let _ = writeln!(s, "net reliability: {}", fields.join(" "));
        }
        // Name every dead link; hand-built reports may fill only the
        // legacy single-error field.
        if self.fabric_errors.is_empty() {
            if let Some(err) = &self.fabric_error {
                let _ = writeln!(s, "FABRIC ERROR: {err}");
            }
        }
        for err in &self.fabric_errors {
            let _ = writeln!(s, "FABRIC ERROR: {err}");
        }
        match &self.trace {
            Some(tr) if !tr.is_empty() => {
                s.push_str(&tr.render());
            }
            Some(_) => {
                let _ = writeln!(s, "trace: enabled but empty");
            }
            None => {}
        }
        s
    }

    /// Hand-encoded JSON object (no external crates, like the rest of the
    /// workspace).
    pub fn json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"label\": {},", jstr(&self.label));
        let _ = writeln!(s, "  \"exec_ns\": {},", self.exec_time.as_nanos());
        s.push_str("  \"nodes\": [\n");
        for (i, t) in self.node_times.iter().enumerate() {
            let nt = self.net.get(i).copied().unwrap_or_default();
            let _ = write!(
                s,
                "    {{\"vtime_ns\": {}, \"compute_ns\": {}, \"comm_ns\": {}, \
                 \"sent_msgs\": {}, \"sent_bytes\": {}, \"recv_msgs\": {}, \"recv_bytes\": {}}}",
                t.as_nanos(),
                self.node_compute
                    .get(i)
                    .copied()
                    .unwrap_or(VTime::ZERO)
                    .as_nanos(),
                self.node_comm
                    .get(i)
                    .copied()
                    .unwrap_or(VTime::ZERO)
                    .as_nanos(),
                nt.sent.msgs,
                nt.sent.bytes,
                nt.received.msgs,
                nt.received.bytes,
            );
            s.push_str(if i + 1 < self.node_times.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n");
        let dsm: Vec<String> = self
            .dsm
            .fields()
            .into_iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        let _ = writeln!(s, "  \"dsm\": {{{}}},", dsm.join(", "));
        let health: Vec<String> = self
            .link_health_totals()
            .fields()
            .into_iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        let _ = writeln!(s, "  \"link_health\": {{{}}},", health.join(", "));
        match &self.fabric_error {
            Some(err) => {
                let _ = writeln!(s, "  \"fabric_error\": {},", jstr(&err.to_string()));
            }
            None => {
                let _ = writeln!(s, "  \"fabric_error\": null,");
            }
        }
        let errs: Vec<String> = self
            .fabric_errors
            .iter()
            .map(|e| jstr(&e.to_string()))
            .collect();
        let _ = writeln!(s, "  \"fabric_errors\": [{}],", errs.join(", "));
        match &self.trace {
            Some(tr) => {
                let _ = writeln!(s, "  \"trace\": {}", tr.json());
            }
            None => {
                let _ = writeln!(s, "  \"trace\": null");
            }
        }
        s.push_str("}\n");
        s
    }

    /// Write `STATS_<label>.json` when `PARADE_STATS_JSON` is set (`1` or
    /// empty → current directory, otherwise the named directory). Returns
    /// the path written.
    pub fn emit_json(&self) -> Option<String> {
        let dir = std::env::var("PARADE_STATS_JSON").ok()?;
        let dir = if dir.is_empty() || dir == "1" {
            ".".to_string()
        } else {
            dir
        };
        let _ = std::fs::create_dir_all(&dir);
        let label: String = self
            .label
            .chars()
            .map(|c| {
                if c.is_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let path = format!("{dir}/STATS_{label}.json");
        match std::fs::write(&path, self.json()) {
            Ok(()) => {
                println!("wrote {path}");
                Some(path)
            }
            Err(e) => {
                eprintln!("warning: could not write {path}: {e}");
                None
            }
        }
    }
}

fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cluster;
    use parade_net::{NetProfile, TimeSource};

    fn run_report() -> RunReport {
        let c = Cluster::builder()
            .nodes(2)
            .threads_per_node(1)
            .net(NetProfile::zero())
            .time(TimeSource::Manual)
            .pool_bytes(256 * parade_dsm::PAGE_SIZE)
            .build()
            .unwrap();
        let (_, report) = c.run_with_report(|g| {
            let xs = g.alloc_f64(256);
            g.parallel(move |tc| {
                tc.par_for(0..256, |i| tc.set(&xs, i, 1.0));
                let mut s = 0.0;
                for i in tc.for_static(0..256) {
                    s += tc.get(&xs, i);
                }
                tc.reduce_f64_sum(s)
            });
        });
        report
    }

    #[test]
    fn render_and_json_cover_all_sources() {
        let sr = StatsReport::from_run("unit", &run_report());
        let text = sr.render();
        assert!(text.contains("exec"), "{text}");
        assert!(text.contains("dsm: "), "{text}");
        assert!(text.contains("recv msgs/bytes"), "{text}");
        let js = sr.json();
        parade_trace::validate_json(&js).expect("stats JSON well-formed");
        assert!(js.contains("\"barriers\""));
        assert!(js.contains("\"recv_bytes\""));
        assert!(js.contains("\"link_health\""));
        assert!(js.contains("\"fabric_error\": null"));
        assert!(js.contains("\"fabric_errors\": []"));
        assert!(js.contains("\"trace\": null"));
        // A clean run has a quiet reliable channel and no error block in
        // the text rendering.
        assert!(sr.link_health_totals().is_quiet());
        assert!(!text.contains("net reliability"));
        assert!(!text.contains("FABRIC ERROR"));
    }

    #[test]
    fn fabric_error_and_reliability_reach_the_report() {
        use parade_net::{FabricError, LinkHealth, MsgClass, VTime};
        let mut sr = StatsReport::from_run("faulty", &run_report());
        sr.link_health = vec![
            LinkHealth {
                retransmits: 3,
                timeouts: 4,
                chaos_drops: 4,
                dup_drops: 1,
                reseq_holds: 2,
                send_failures: 1,
            },
            LinkHealth::default(),
        ];
        let dead = |dst: usize| FabricError {
            src: 0,
            dst,
            class: MsgClass::Dsm,
            tag: 42,
            seq: 7,
            attempts: 11,
            gave_up_at: VTime::from_micros(500),
        };
        sr.fabric_error = Some(dead(1));
        // Two links died in the same interval: both must be named.
        sr.fabric_errors = vec![dead(1), FabricError { dst: 2, ..dead(1) }];
        let text = sr.render();
        assert!(text.contains("net reliability: retransmits=3"), "{text}");
        assert!(
            text.contains("FABRIC ERROR: fabric link 0->1 dead"),
            "{text}"
        );
        assert!(
            text.contains("FABRIC ERROR: fabric link 0->2 dead"),
            "{text}"
        );
        assert!(text.contains("DSM protocol request"), "{text}");
        let js = sr.json();
        parade_trace::validate_json(&js).expect("stats JSON well-formed");
        assert!(js.contains("\"retransmits\": 3"));
        assert!(js.contains("\"fabric_error\": \"fabric link 0->1 dead"));
        assert!(js.contains("fabric link 0->2 dead"));
    }

    #[test]
    fn net_counters_balance_in_report() {
        let sr = StatsReport::from_run("balance", &run_report());
        let mut sum = NodeTraffic::default();
        for n in &sr.net {
            sum.add(*n);
        }
        // Fabric drained at shutdown: every sent message was received.
        assert_eq!(sum.sent, sum.received);
        assert!(sum.sent.msgs > 0);
    }
}
