//! Per-node runtime state shared by all of a node's compute threads: the
//! intra-node barrier, the compute-thread pool, and the slot tables behind
//! `single`/`reduction` constructs.

use std::sync::atomic::AtomicU64;
use std::sync::{mpsc, Arc};

use parade_net::sync::Mutex;

use parade_cluster::ProtocolMode;
use parade_dsm::{Dsm, RegionHandle};
use parade_mpi::Communicator;
use parade_net::{TimeSource, VClock, VTime};
use parade_tasks::SchedConfig;
use parade_trace as trace;

use crate::ctx::ThreadCtx;
use parade_net::VBarrier;

/// Erased parallel-region body.
pub(crate) type RegionFn = dyn Fn(&ThreadCtx) + Send + Sync;

/// Number of reusable construct slots (singles, reductions, dynamic loops).
/// Generation stamps make reuse safe; the slot count only bounds how many
/// instances may be in flight, which hierarchical barriers already cap.
pub(crate) const SLOTS: usize = 4096;

/// Lock-id namespace for runtime-internal DSM locks (user locks live below).
pub(crate) const INTERNAL_LOCK_BASE: u64 = 1 << 40;

/// A unique, monotonically increasing id for a construct instance,
/// identical on every thread of the cluster because regions and constructs
/// are encountered in the same program order.
pub(crate) fn construct_gen(region_no: u64, seq: u64) -> u64 {
    debug_assert!(seq < 1 << 20, "too many constructs in one region");
    region_no * (1 << 20) + seq + 1
}

/// State of one `single` slot: generation already executed on this node,
/// and the virtual time at which the executing thread released the slot
/// (the pthread-lock serialization of Figure 3).
#[derive(Clone, Copy, Default)]
pub(crate) struct SingleSlot {
    pub done_gen: u64,
    pub release_at: VTime,
}

/// Node-local combine state for hierarchical reductions.
#[derive(Default)]
pub(crate) struct ReduceState {
    pub count: usize,
    pub acc_f64: f64,
    pub acc_i64: i64,
    pub result_f64: f64,
    pub result_i64: i64,
    pub acc_vec: Vec<f64>,
    pub result_vec: Vec<f64>,
}

/// State of one dynamic-loop slot (node-local chunk queue).
#[derive(Clone, Copy, Default)]
pub(crate) struct DynSlot {
    pub gen: u64,
    pub next: usize,
    pub end: usize,
}

pub(crate) struct Job {
    pub f: Arc<RegionFn>,
    pub start: VTime,
    pub region_no: u64,
}

/// Everything one node's threads share.
pub(crate) struct NodeRt {
    pub dsm: Arc<Dsm>,
    pub comm: Arc<Communicator>,
    pub node: usize,
    pub nnodes: usize,
    pub tpn: usize,
    pub mode: ProtocolMode,
    pub time: TimeSource,
    pub task_cfg: SchedConfig,
    pub barrier: VBarrier,
    pub singles: Vec<Mutex<SingleSlot>>,
    pub reduce: Mutex<ReduceState>,
    pub dyn_slots: Vec<Mutex<DynSlot>>,
    /// Per-critical-name node mutex carrying the last release time.
    pub criticals: Mutex<std::collections::HashMap<u64, Arc<Mutex<VTime>>>>,
    pub region_counter: AtomicU64,
    /// DSM scratch region for SdsmOnly-mode reductions (SLOTS × 16 B).
    pub scratch: RegionHandle,
    /// DSM flag region for SdsmOnly-mode singles (SLOTS × 8 B).
    pub flags: RegionHandle,
    pool: Mutex<Vec<mpsc::Sender<Job>>>,
}

impl NodeRt {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        dsm: Arc<Dsm>,
        comm: Arc<Communicator>,
        node: usize,
        nnodes: usize,
        tpn: usize,
        mode: ProtocolMode,
        time: TimeSource,
        task_cfg: SchedConfig,
    ) -> Arc<NodeRt> {
        // Reserved allocations, identical on every node (performed before
        // any user allocation, so ids/offsets line up cluster-wide).
        let scratch = dsm
            .alloc_region(SLOTS * 16)
            .expect("pool too small for runtime scratch");
        let flags = dsm
            .alloc_region(SLOTS * 8)
            .expect("pool too small for runtime flags");
        Arc::new(NodeRt {
            dsm,
            comm,
            node,
            nnodes,
            tpn,
            mode,
            time,
            task_cfg,
            barrier: VBarrier::new(tpn),
            singles: (0..SLOTS)
                .map(|_| Mutex::new(SingleSlot::default()))
                .collect(),
            reduce: Mutex::new(ReduceState::default()),
            dyn_slots: (0..SLOTS).map(|_| Mutex::new(DynSlot::default())).collect(),
            criticals: Mutex::new(std::collections::HashMap::new()),
            region_counter: AtomicU64::new(0),
            scratch,
            flags,
            pool: Mutex::new(Vec::new()),
        })
    }

    /// The node's small-data registry (message-passing update protocol).
    pub fn small(&self) -> &parade_dsm::SmallRegistry {
        self.dsm.small()
    }

    /// Global thread id of `(node, local_tid)`.
    pub fn global_tid(&self, local_tid: usize) -> usize {
        self.node * self.tpn + local_tid
    }

    pub fn total_threads(&self) -> usize {
        self.nnodes * self.tpn
    }

    pub fn critical_mutex(&self, id: u64) -> Arc<Mutex<VTime>> {
        Arc::clone(
            self.criticals
                .lock()
                .entry(id)
                .or_insert_with(|| Arc::new(Mutex::new(VTime::ZERO))),
        )
    }

    /// Dispatch a region to the pool threads (local tids 1..tpn).
    pub fn dispatch(&self, f: &Arc<RegionFn>, start: VTime, region_no: u64) {
        let pool = self.pool.lock();
        debug_assert_eq!(pool.len(), self.tpn - 1);
        for tx in pool.iter() {
            tx.send(Job {
                f: Arc::clone(f),
                start,
                region_no,
            })
            .expect("pool thread exited early");
        }
    }

    /// Stop the pool (threads exit once their queues drain).
    pub fn shutdown_pool(&self) {
        self.pool.lock().clear();
    }
}

/// Spawn the node's pool threads (local tids `1..tpn`). Must be called
/// exactly once, right after `NodeRt::new`.
pub(crate) fn spawn_pool(rt: &Arc<NodeRt>) -> Vec<std::thread::JoinHandle<()>> {
    let mut handles = Vec::new();
    let mut senders = Vec::new();
    for local_tid in 1..rt.tpn {
        let (tx, rx) = mpsc::channel::<Job>();
        senders.push(tx);
        let rt2 = Arc::clone(rt);
        let h = std::thread::Builder::new()
            .name(format!("parade-n{}t{}", rt.node, local_tid))
            .spawn(move || {
                trace::set_identity(rt2.node, &format!("worker-{local_tid}"));
                while let Ok(job) = rx.recv() {
                    let mut clock = VClock::new(rt2.time);
                    clock.reset_to(job.start);
                    let tc = ThreadCtx::new(Arc::clone(&rt2), local_tid, job.region_no, clock);
                    (job.f)(&tc);
                    tc.region_end();
                }
            })
            .expect("spawn pool thread");
        handles.push(h);
    }
    *rt.pool.lock() = senders;
    handles
}

/// Run one parallel region on this node; `lead` is executed as local
/// thread 0 (on the calling thread) and its result returned.
///
/// The caller's clock is threaded through: the implied fork consistency
/// barrier, the region body, and the join barrier all advance it.
pub(crate) fn run_region<R>(
    rt: &Arc<NodeRt>,
    f: &Arc<RegionFn>,
    clock: &mut VClock,
    lead: impl FnOnce(&ThreadCtx) -> R,
) -> R {
    let region_no = rt
        .region_counter
        .fetch_add(1, std::sync::atomic::Ordering::SeqCst)
        + 1;
    // Fork consistency point: master's serial writes become visible, stale
    // copies are invalidated (the release/acquire implied by the fork).
    rt.dsm.barrier(clock);
    let start = clock.now();
    rt.dispatch(f, start, region_no);
    let tc = ThreadCtx::new(Arc::clone(rt), 0, region_no, take_clock(clock));
    let r = lead(&tc);
    tc.region_end();
    *clock = tc.into_clock();
    r
}

fn take_clock(clock: &mut VClock) -> VClock {
    std::mem::replace(clock, VClock::manual())
}
