//! Quick check of CG zeta against the published NPB values.
use parade_kernels::cg::{cg_sequential, CgClass};

fn main() {
    for class in [CgClass::S, CgClass::W] {
        let r = cg_sequential(class);
        let want = class.params().zeta_verify;
        println!(
            "class {}: zeta = {:.13}  (reference {:.13}, diff {:.3e}) rnorm {:.3e}",
            class.label(),
            r.zeta,
            want,
            (r.zeta - want).abs(),
            r.rnorm
        );
    }
}
