//! Check EP sums against the published NPB values, and parallel CG vs zeta.
use parade_core::{Cluster, NetProfile, TimeSource};
use parade_kernels::cg::{cg_parade, CgClass};
use parade_kernels::ep::{ep_sequential, EpClass};

fn main() {
    {
        let class = EpClass::S;
        let r = ep_sequential(class);
        let (rx, ry) = class.reference().unwrap();
        println!(
            "EP class {}: sx={:.12e} (ref {:.12e}) sy={:.12e} (ref {:.12e}) ok={:?}",
            class.label(),
            r.sx,
            rx,
            r.sy,
            ry,
            r.verify(class)
        );
    }
    let cluster = Cluster::builder()
        .nodes(4)
        .threads_per_node(2)
        .net(NetProfile::clan_via())
        .time(TimeSource::Manual)
        .build()
        .unwrap();
    let (r, report) = cg_parade(&cluster, CgClass::S);
    println!(
        "CG class S parallel (4 nodes x 2): zeta={:.13} verify={} vtime={} fetches={}",
        r.zeta,
        r.verify(CgClass::S),
        report.exec_time,
        report.cluster.dsm_totals().page_fetches
    );
}
