//! Task-based n-body: the [`crate::md`] force computation recast as an
//! irregular task graph executed by the distributed work-stealing scheduler.
//!
//! Each time step is one task phase: the particle set is cut into `blocks`
//! force blocks, block `b` is spawned by node `b % nnodes`, and idle nodes
//! steal blocks from busy ones. A block task returns `[pot, kin,
//! f_x0, f_y0, f_z0, ...]` for its particles; the id-sorted merge puts the
//! blocks back in order on every node, which then applies an identical
//! velocity-Verlet update to its replicated state.
//!
//! Determinism: particle state is replicated per node from the seed and
//! advanced only from the merged (id-ordered) block results, and block ids
//! are a pure function of the block index — so the trajectory is
//! **bit-identical** for any steal schedule, seed, victim order, or chaos
//! fault pattern, and equal to [`nbody_task_sequential`], which sums block
//! partials in the same order.

use std::sync::Arc;

use parade_core::{partition, Cluster, RunReport, TaskFn};
use parade_net::sync::Mutex;

use crate::md::{compute_range, initialize, update_range, MdEnergies, MdParams, MdResult, ND};

/// Per-node replicated particle state.
struct Sim {
    pos: Vec<f64>,
    vel: Vec<f64>,
    acc: Vec<f64>,
}

/// Per-block force computation: energies first, then the force components
/// of the block's particles.
fn block_result(p: &MdParams, sim: &Sim, block: usize, blocks: usize) -> Vec<f64> {
    let range = partition(0..p.np, blocks, block);
    let mut force = vec![0.0; range.len() * ND];
    let (pot, kin) = compute_range(p, &sim.pos, &sim.vel, range, &mut force);
    let mut out = Vec::with_capacity(2 + force.len());
    out.push(pot);
    out.push(kin);
    out.extend_from_slice(&force);
    out
}

/// Apply one step from the merged block results (identical on every node).
fn apply_merged(
    p: &MdParams,
    sim: &mut Sim,
    blocks: usize,
    merged: &[(u64, Vec<f64>)],
) -> MdEnergies {
    assert_eq!(merged.len(), blocks, "one result per force block");
    let mut pot = 0.0;
    let mut kin = 0.0;
    let mut force = vec![0.0; p.np * ND];
    for (b, (_, r)) in merged.iter().enumerate() {
        pot += r[0];
        kin += r[1];
        let range = partition(0..p.np, blocks, b);
        force[range.start * ND..range.end * ND].copy_from_slice(&r[2..]);
    }
    update_range(p, 0..p.np, &mut sim.pos, &mut sim.vel, &mut sim.acc, &force);
    MdEnergies {
        potential: pot,
        kinetic: kin,
    }
}

/// Sequential reference: the same blockwise computation on one node (same
/// floating-point summation order as the distributed version).
pub fn nbody_task_sequential(p: MdParams, blocks: usize) -> MdResult {
    let (pos, vel, acc) = initialize(&p);
    let mut sim = Sim { pos, vel, acc };
    let mut first = None;
    let mut last = MdEnergies {
        potential: 0.0,
        kinetic: 0.0,
    };
    for _ in 0..p.steps {
        let merged: Vec<(u64, Vec<f64>)> = (0..blocks)
            .map(|b| (2 * b as u64 + 1, block_result(&p, &sim, b, blocks)))
            .collect();
        last = apply_merged(&p, &mut sim, blocks, &merged);
        first.get_or_insert(last);
    }
    MdResult {
        first: first.expect("at least one step"),
        last,
    }
}

/// Distributed task version: one task phase per step, block `b` spawned by
/// node `b % nnodes` (so root task ids come out as `2b + 1` and the merge
/// is in block order), stolen freely under the configured strategy.
pub fn nbody_task_parade(cluster: &Cluster, p: MdParams, blocks: usize) -> (MdResult, RunReport) {
    cluster.run_with_report(move |g| {
        g.parallel(move |tc| {
            let (pos, vel, acc) = initialize(&p);
            let sim = Arc::new(Mutex::new(Sim { pos, vel, acc }));
            let sim_body = Arc::clone(&sim);
            let funcs: Vec<TaskFn> = vec![Arc::new(move |_tc, d, _s| {
                let sim = sim_body.lock();
                block_result(&p, &sim, d.args[0] as usize, d.args[1] as usize)
            })];
            let mut first = None;
            let mut last = MdEnergies {
                potential: 0.0,
                kinetic: 0.0,
            };
            for _ in 0..p.steps {
                let merged = tc.task_phase(&funcs, |scope| {
                    let (n, nn) = (scope.node(), scope.num_nodes());
                    for b in 0..blocks {
                        if b % nn == n {
                            scope.spawn(0, vec![b as u64, blocks as u64]);
                        }
                    }
                });
                if let Some(merged) = merged {
                    last = apply_merged(&p, &mut sim.lock(), blocks, &merged);
                    first.get_or_insert(last);
                }
            }
            // Lead threads hold the result; the master's is returned.
            first.map(|f| MdResult { first: f, last })
        })
        .expect("master thread is a lead")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parade_core::{NetProfile, SchedConfig, StealStrategy, TimeSource};

    fn cluster(nodes: usize, tpn: usize, sched: SchedConfig) -> Cluster {
        Cluster::builder()
            .nodes(nodes)
            .threads_per_node(tpn)
            .net(NetProfile::zero())
            .time(TimeSource::Manual)
            .pool_bytes(256 * parade_dsm::PAGE_SIZE)
            .task_scheduler(sched)
            .build()
            .unwrap()
    }

    fn bits(r: &MdResult) -> [u64; 4] {
        [
            r.first.potential.to_bits(),
            r.first.kinetic.to_bits(),
            r.last.potential.to_bits(),
            r.last.kinetic.to_bits(),
        ]
    }

    #[test]
    fn task_nbody_matches_blockwise_sequential_bitwise() {
        let p = MdParams::sized(48, 4);
        let seq = nbody_task_sequential(p, 6);
        let c = cluster(3, 1, SchedConfig::default());
        let (par, _) = nbody_task_parade(&c, p, 6);
        assert_eq!(bits(&seq), bits(&par));
    }

    #[test]
    fn task_nbody_is_bit_identical_across_steal_seeds_and_strategies() {
        let p = MdParams::sized(32, 3);
        let mut all = Vec::new();
        for seed in [1u64, 0xDEAD_BEEF, 42] {
            let c = cluster(
                2,
                2,
                SchedConfig {
                    seed,
                    ..SchedConfig::default()
                },
            );
            let (r, _) = nbody_task_parade(&c, p, 8);
            all.push(bits(&r));
        }
        let c = cluster(
            2,
            2,
            SchedConfig {
                strategy: StealStrategy::Flat,
                ..SchedConfig::default()
            },
        );
        let (flat, _) = nbody_task_parade(&c, p, 8);
        all.push(bits(&flat));
        all.push(bits(&nbody_task_sequential(p, 8)));
        for w in all.windows(2) {
            assert_eq!(w[0], w[1], "steal schedule changed the trajectory");
        }
    }

    #[test]
    fn task_nbody_survives_chaos() {
        let p = MdParams::sized(24, 2);
        let seq = nbody_task_sequential(p, 4);
        let c = Cluster::builder()
            .nodes(2)
            .threads_per_node(1)
            .net(NetProfile::zero())
            .time(TimeSource::Manual)
            .pool_bytes(256 * parade_dsm::PAGE_SIZE)
            .chaos(parade_net::ChaosProfile::lossy(7))
            .build()
            .unwrap();
        let (par, _) = nbody_task_parade(&c, p, 4);
        assert_eq!(bits(&seq), bits(&par), "chaos changed the trajectory");
    }

    #[test]
    fn energy_is_conserved_under_tasking() {
        let p = MdParams::sized(64, 20);
        let r = nbody_task_sequential(p, 5);
        assert!(r.drift() < 1e-6, "drift {}", r.drift());
    }
}
