//! Molecular dynamics simulation (the `md.f` OpenMP sample the paper uses,
//! §6.2): `np` particles in a 3-D box with a smooth pairwise potential
//! `V(d) = sin²(min(d, π/2))`, integrated by velocity Verlet.
//!
//! Communication pattern resembles Helmholtz (positions are shared and
//! read by everyone) but the shared volume is smaller, so ParADE scales
//! well in all configurations (Figure 11).

use parade_core::{Cluster, ReduceOp, RunReport, ThreadCtx};

use crate::nasrng::NasRng;

/// Spatial dimensions (the sample uses 3).
pub const ND: usize = 3;

#[derive(Debug, Clone, Copy)]
pub struct MdParams {
    /// Number of particles.
    pub np: usize,
    /// Time steps.
    pub steps: usize,
    pub dt: f64,
    pub mass: f64,
    /// Box size for initial placement.
    pub box_size: f64,
    /// RNG seed for initial conditions.
    pub seed: u64,
}

impl Default for MdParams {
    fn default() -> Self {
        MdParams {
            np: 256,
            steps: 10,
            dt: 1e-4,
            mass: 1.0,
            box_size: 10.0,
            seed: 123_456_789,
        }
    }
}

impl MdParams {
    pub fn sized(np: usize, steps: usize) -> Self {
        MdParams {
            np,
            steps,
            ..MdParams::default()
        }
    }
}

/// Energies reported each step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MdEnergies {
    pub potential: f64,
    pub kinetic: f64,
}

impl MdEnergies {
    pub fn total(&self) -> f64 {
        self.potential + self.kinetic
    }
}

/// Result of a run: energies of the first and last step (the sample prints
/// conservation of `E`).
#[derive(Debug, Clone, Copy)]
pub struct MdResult {
    pub first: MdEnergies,
    pub last: MdEnergies,
}

impl MdResult {
    /// Relative energy drift over the run.
    pub fn drift(&self) -> f64 {
        ((self.last.total() - self.first.total()) / self.first.total()).abs()
    }
}

/// Deterministic initial conditions (positions uniform in the box,
/// velocities zero — as in the openmp.org sample's `initialize`).
pub fn initialize(p: &MdParams) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut rng = NasRng::nas(p.seed);
    let pos: Vec<f64> = (0..p.np * ND)
        .map(|_| p.box_size * rng.next_f64())
        .collect();
    let vel = vec![0.0; p.np * ND];
    let acc = vec![0.0; p.np * ND];
    (pos, vel, acc)
}

/// Pair potential `V(d)` and its derivative at distance `d`.
#[inline]
fn v_pair(d: f64) -> (f64, f64) {
    const HALF_PI: f64 = std::f64::consts::FRAC_PI_2;
    if d < HALF_PI {
        let s = d.sin();
        (s * s, (2.0 * d).sin())
    } else {
        (1.0, 0.0)
    }
}

/// Compute forces + energies for particles `range`, reading all positions.
/// Shared with the task-based n-body kernel ([`crate::nbody_task`]).
pub(crate) fn compute_range(
    p: &MdParams,
    pos: &[f64],
    vel: &[f64],
    range: std::ops::Range<usize>,
    force: &mut [f64],
) -> (f64, f64) {
    let np = p.np;
    let mut pot = 0.0;
    let mut kin = 0.0;
    for (bi, i) in range.enumerate() {
        let pi = &pos[i * ND..(i + 1) * ND];
        let fi = &mut force[bi * ND..(bi + 1) * ND];
        fi.fill(0.0);
        for j in 0..np {
            if j == i {
                continue;
            }
            let pj = &pos[j * ND..(j + 1) * ND];
            let mut d2 = 0.0;
            let mut rij = [0.0f64; ND];
            for k in 0..ND {
                rij[k] = pi[k] - pj[k];
                d2 += rij[k] * rij[k];
            }
            let d = d2.sqrt().max(1e-12);
            let (v, dv) = v_pair(d);
            // Each pair counted twice; halve the potential.
            pot += 0.5 * v;
            for k in 0..ND {
                fi[k] -= rij[k] * dv / d;
            }
        }
        for k in 0..ND {
            let vk = vel[i * ND + k];
            kin += vk * vk;
        }
    }
    kin *= 0.5 * p.mass;
    (pot, kin)
}

/// Velocity-Verlet update for particles `range` (local arrays).
pub(crate) fn update_range(
    p: &MdParams,
    range: std::ops::Range<usize>,
    pos: &mut [f64],
    vel: &mut [f64],
    acc: &mut [f64],
    force: &[f64],
) {
    let rmass = 1.0 / p.mass;
    let dt = p.dt;
    for (bi, _i) in range.enumerate() {
        for k in 0..ND {
            let idx = bi * ND + k;
            let f = force[idx];
            pos[idx] += vel[idx] * dt + 0.5 * dt * dt * acc[idx];
            vel[idx] += 0.5 * dt * (f * rmass + acc[idx]);
            acc[idx] = f * rmass;
        }
    }
}

/// Sequential reference implementation.
pub fn md_sequential(p: MdParams) -> MdResult {
    let (mut pos, mut vel, mut acc) = initialize(&p);
    let mut force = vec![0.0; p.np * ND];
    let mut first = None;
    let mut last = MdEnergies {
        potential: 0.0,
        kinetic: 0.0,
    };
    for _ in 0..p.steps {
        let (pot, kin) = compute_range(&p, &pos, &vel, 0..p.np, &mut force);
        last = MdEnergies {
            potential: pot,
            kinetic: kin,
        };
        first.get_or_insert(last);
        update_range(&p, 0..p.np, &mut pos, &mut vel, &mut acc, &force);
    }
    MdResult {
        first: first.expect("at least one step"),
        last,
    }
}

/// ParADE version: positions shared in the DSM (read by every node each
/// step), velocities/accelerations/forces owned per thread, energies
/// reduced with a merged two-variable reduction (§4.2).
pub fn md_parade(cluster: &Cluster, p: MdParams) -> (MdResult, RunReport) {
    cluster.run_with_report(move |g| {
        let np = p.np;
        let pos_sh = g.alloc_f64(np * ND);
        let (init_pos, _, _) = initialize(&p);
        g.write_from(&pos_sh, 0, &init_pos);

        g.parallel(move |tc: &ThreadCtx| {
            let range = tc.for_static(0..np);
            let nmine = range.len();
            let mut posfull = vec![0.0f64; np * ND];
            // Owned slices of the particle state.
            let mut lpos = vec![0.0f64; nmine * ND];
            tc.read_into(&pos_sh, range.start * ND, &mut lpos);
            let mut lvel = vec![0.0f64; nmine * ND];
            let mut lacc = vec![0.0f64; nmine * ND];
            let mut lforce = vec![0.0f64; nmine * ND];

            let mut first = None;
            let mut last = MdEnergies {
                potential: 0.0,
                kinetic: 0.0,
            };
            tc.barrier();
            for _ in 0..p.steps {
                tc.read_into(&pos_sh, 0, &mut posfull);
                // Forces need all positions; velocities are local.
                let mut vel_view = vec![0.0f64; np * ND];
                vel_view[range.start * ND..range.end * ND].copy_from_slice(&lvel);
                let (lpot, lkin) =
                    compute_range(&p, &posfull, &vel_view, range.clone(), &mut lforce);
                // reduction(+: pot, kin) merged into one structure.
                let sums = tc.reduce_f64s(ReduceOp::Sum, &[lpot, lkin]);
                last = MdEnergies {
                    potential: sums[0],
                    kinetic: sums[1],
                };
                first.get_or_insert(last);
                update_range(&p, range.clone(), &mut lpos, &mut lvel, &mut lacc, &lforce);
                tc.write_from(&pos_sh, range.start * ND, &lpos);
                tc.barrier();
            }
            MdResult {
                first: first.expect("at least one step"),
                last,
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parade_core::{NetProfile, TimeSource};

    #[test]
    fn energy_is_conserved_sequentially() {
        let p = MdParams::sized(64, 20);
        let r = md_sequential(p);
        assert!(r.first.total() > 0.0);
        assert!(r.drift() < 1e-6, "drift {}", r.drift());
    }

    #[test]
    fn parallel_matches_sequential() {
        let p = MdParams::sized(48, 5);
        let seq = md_sequential(p);
        let c = Cluster::builder()
            .nodes(2)
            .threads_per_node(2)
            .net(NetProfile::zero())
            .time(TimeSource::Manual)
            .pool_bytes(256 * parade_dsm::PAGE_SIZE)
            .build()
            .unwrap();
        let (par, _) = md_parade(&c, p);
        assert!((par.last.potential - seq.last.potential).abs() < 1e-9);
        assert!((par.last.kinetic - seq.last.kinetic).abs() < 1e-9);
    }

    #[test]
    fn potential_is_smooth_at_cutoff() {
        let (v1, dv1) = v_pair(std::f64::consts::FRAC_PI_2 - 1e-9);
        let (v2, dv2) = v_pair(std::f64::consts::FRAC_PI_2 + 1e-9);
        assert!((v1 - v2).abs() < 1e-6);
        assert!(dv1.abs() < 1e-6 && dv2 == 0.0);
    }
}
