//! NAS EP (Embarrassingly Parallel) kernel, NPB 2.3.
//!
//! Generates `2^m` pairs of uniform deviates with the NAS LCG, converts
//! them to Gaussian deviates by the Marsaglia polar method (acceptance
//! `x₁²+x₂² ≤ 1`), and tallies them in concentric square annuli. Almost no
//! communication — the paper uses it to show ParADE's best-case
//! scalability (Figure 9).

use parade_core::{Cluster, ReduceOp, RunReport, ThreadCtx};

use crate::nasrng::NasRng;

/// log2 of the batch size (NPB `MK`).
const MK: u32 = 16;
const NK: u64 = 1 << MK;
/// Number of annuli (NPB `NQ`).
const NQ: usize = 10;
/// EP seed (NPB `S`).
const EP_SEED: u64 = 271_828_183;

/// NAS problem classes used in the paper (plus S/W for testing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpClass {
    /// 2^24 pairs.
    S,
    /// 2^25 pairs.
    W,
    /// 2^28 pairs (the paper's configuration).
    A,
    /// Custom log2 size (must be ≥ MK); no reference values.
    Custom(u32),
}

impl EpClass {
    pub fn m(self) -> u32 {
        match self {
            EpClass::S => 24,
            EpClass::W => 25,
            EpClass::A => 28,
            EpClass::Custom(m) => m,
        }
    }

    /// NPB reference sums (sx, sy) for verification, where published.
    pub fn reference(self) -> Option<(f64, f64)> {
        match self {
            EpClass::S => Some((-3.247_834_652_034_74e3, -6.958_407_078_382_297e3)),
            EpClass::W => Some((-2.863_319_731_645_753e3, -6.320_053_679_109_499e3)),
            EpClass::A => Some((-4.295_875_165_629_892e3, -1.580_732_573_678_431e4)),
            EpClass::Custom(_) => None,
        }
    }

    pub fn label(self) -> String {
        match self {
            EpClass::S => "S".into(),
            EpClass::W => "W".into(),
            EpClass::A => "A".into(),
            EpClass::Custom(m) => format!("2^{m}"),
        }
    }
}

/// EP result: Gaussian sums and annulus counts.
#[derive(Debug, Clone, PartialEq)]
pub struct EpResult {
    pub sx: f64,
    pub sy: f64,
    pub q: [u64; NQ],
    /// Total accepted pairs.
    pub gc: u64,
}

impl EpResult {
    /// NPB verification: relative error of the sums within 1e-8.
    pub fn verify(&self, class: EpClass) -> Option<bool> {
        class.reference().map(|(rx, ry)| {
            let ex = ((self.sx - rx) / rx).abs();
            let ey = ((self.sy - ry) / ry).abs();
            ex <= 1e-8 && ey <= 1e-8
        })
    }
}

/// Process one batch of `NK` pairs; batch index `kk` is 0-based.
fn ep_batch(kk: u64, x: &mut [f64]) -> (f64, f64, [u64; NQ], u64) {
    debug_assert_eq!(x.len(), 2 * NK as usize);
    let mut rng = NasRng::nas(EP_SEED).at_offset(2 * NK * kk);
    for v in x.iter_mut() {
        *v = rng.next_f64();
    }
    let (mut sx, mut sy, mut gc) = (0.0f64, 0.0f64, 0u64);
    let mut q = [0u64; NQ];
    for i in 0..NK as usize {
        let x1 = 2.0 * x[2 * i] - 1.0;
        let x2 = 2.0 * x[2 * i + 1] - 1.0;
        let t = x1 * x1 + x2 * x2;
        if t <= 1.0 {
            let t2 = (-2.0 * t.ln() / t).sqrt();
            let t3 = x1 * t2;
            let t4 = x2 * t2;
            let l = t3.abs().max(t4.abs()) as usize;
            q[l] += 1;
            sx += t3;
            sy += t4;
            gc += 1;
        }
    }
    (sx, sy, q, gc)
}

/// Sequential reference implementation.
pub fn ep_sequential(class: EpClass) -> EpResult {
    let m = class.m();
    assert!(m >= MK, "class too small: 2^{m} < batch 2^{MK}");
    let nn = 1u64 << (m - MK);
    let mut x = vec![0.0f64; 2 * NK as usize];
    let (mut sx, mut sy, mut gc) = (0.0, 0.0, 0u64);
    let mut q = [0u64; NQ];
    for kk in 0..nn {
        let (bx, by, bq, bg) = ep_batch(kk, &mut x);
        sx += bx;
        sy += by;
        gc += bg;
        for (a, b) in q.iter_mut().zip(bq) {
            *a += b;
        }
    }
    EpResult { sx, sy, q, gc }
}

/// ParADE version: batches statically divided across all threads, per-node
/// hierarchical reduction of the sums and counts at the end.
pub fn ep_parade(cluster: &Cluster, class: EpClass) -> (EpResult, RunReport) {
    let m = class.m();
    assert!(m >= MK);
    let nn = (1u64 << (m - MK)) as usize;
    let (res, report) = cluster.run_with_report(move |g| {
        g.parallel(move |tc: &ThreadCtx| {
            let mut x = vec![0.0f64; 2 * NK as usize];
            let (mut sx, mut sy, mut gc) = (0.0, 0.0, 0u64);
            let mut q = [0u64; NQ];
            for kk in tc.for_static(0..nn) {
                let (bx, by, bq, bg) = ep_batch(kk as u64, &mut x);
                sx += bx;
                sy += by;
                gc += bg;
                for (a, b) in q.iter_mut().zip(bq) {
                    *a += b;
                }
            }
            // reduction(+: sx, sy) merged into one structure (§4.2), then
            // the counts.
            let sums = tc.reduce_f64s(ReduceOp::Sum, &[sx, sy]);
            let mut qg = [0i64; NQ + 1];
            for (i, &c) in q.iter().enumerate() {
                qg[i] = c as i64;
            }
            qg[NQ] = gc as i64;
            let qg: Vec<f64> = qg.iter().map(|&v| v as f64).collect();
            let totals = tc.reduce_f64s(ReduceOp::Sum, &qg);
            let mut q_out = [0u64; NQ];
            for i in 0..NQ {
                q_out[i] = totals[i] as u64;
            }
            EpResult {
                sx: sums[0],
                sy: sums[1],
                q: q_out,
                gc: totals[NQ] as u64,
            }
        })
    });
    (res, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parade_core::{NetProfile, TimeSource};

    fn test_cluster(nodes: usize, tpn: usize) -> Cluster {
        Cluster::builder()
            .nodes(nodes)
            .threads_per_node(tpn)
            .net(NetProfile::zero())
            .time(TimeSource::Manual)
            .pool_bytes(64 * parade_dsm::PAGE_SIZE)
            .build()
            .unwrap()
    }

    #[test]
    fn batches_are_deterministic() {
        let mut x1 = vec![0.0; 2 * NK as usize];
        let mut x2 = vec![0.0; 2 * NK as usize];
        let a = ep_batch(3, &mut x1);
        let b = ep_batch(3, &mut x2);
        assert_eq!(a, b);
        let c = ep_batch(4, &mut x1);
        assert_ne!(a.0, c.0);
    }

    #[test]
    fn parallel_matches_sequential_small() {
        let class = EpClass::Custom(18); // 4 batches
        let seq = ep_sequential(class);
        let c = test_cluster(2, 2);
        let (par, _) = ep_parade(&c, class);
        assert!((par.sx - seq.sx).abs() < 1e-9);
        assert!((par.sy - seq.sy).abs() < 1e-9);
        assert_eq!(par.q, seq.q);
        assert_eq!(par.gc, seq.gc);
    }

    #[test]
    fn annuli_counts_decrease() {
        let r = ep_sequential(EpClass::Custom(18));
        // Gaussian tails: q[0] > q[1] > ... and the far annuli are empty.
        assert!(r.q[0] > r.q[1]);
        assert!(r.q[1] > r.q[2]);
        assert_eq!(r.q[8], 0);
        assert_eq!(r.q[9], 0);
        // Acceptance rate of the polar method is π/4.
        let total = 1u64 << 18;
        let rate = r.gc as f64 / total as f64;
        assert!((rate - std::f64::consts::FRAC_PI_4).abs() < 0.01, "{rate}");
    }

    // The full NPB class S verification runs in release only (16.7M
    // deviates are slow without optimization); see tests/kernels.rs.
}
