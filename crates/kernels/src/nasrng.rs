//! The NAS Parallel Benchmarks pseudo-random number generator.
//!
//! A 46-bit linear congruential generator, `x_{k+1} = a·x_k mod 2^46` with
//! `a = 5^13`, exactly as specified in the NPB report. NPB implements it in
//! double-precision tricks (`randlc`/`vranlc`); we use 128-bit integer
//! arithmetic, which produces bit-identical sequences. `O(log n)`
//! jump-ahead lets threads seed disjoint subsequences (how NAS EP
//! parallelizes).

const MASK46: u64 = (1u64 << 46) - 1;

/// The default multiplier `a = 5^13 = 1220703125`.
pub const NAS_A: u64 = 1_220_703_125;

/// The canonical EP/CG seed component `314159265`.
pub const NAS_SEED: u64 = 314_159_265;

#[inline]
fn mul46(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) & MASK46 as u128) as u64
}

/// `a^n mod 2^46` by binary exponentiation.
pub fn pow46(mut a: u64, mut n: u64) -> u64 {
    let mut r: u64 = 1;
    a &= MASK46;
    while n > 0 {
        if n & 1 == 1 {
            r = mul46(r, a);
        }
        a = mul46(a, a);
        n >>= 1;
    }
    r
}

/// The NPB LCG stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NasRng {
    seed: u64,
    a: u64,
}

impl NasRng {
    pub fn new(seed: u64, a: u64) -> Self {
        NasRng {
            seed: seed & MASK46,
            a: a & MASK46,
        }
    }

    /// The standard NPB stream with multiplier `5^13`.
    pub fn nas(seed: u64) -> Self {
        NasRng::new(seed, NAS_A)
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `randlc`: advance and return a uniform deviate in (0, 1).
    pub fn next_f64(&mut self) -> f64 {
        self.seed = mul46(self.seed, self.a);
        self.seed as f64 * 2f64.powi(-46)
    }

    /// Skip `n` values in O(log n) (the NPB seed-jumping trick).
    pub fn skip(&mut self, n: u64) {
        self.seed = mul46(self.seed, pow46(self.a, n));
    }

    /// A new stream positioned `n` values ahead of this one.
    pub fn at_offset(&self, n: u64) -> NasRng {
        let mut r = *self;
        r.skip(n);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_first_value() {
        // x1 = 314159265 * 1220703125 mod 2^46.
        let mut r = NasRng::nas(NAS_SEED);
        let v = r.next_f64();
        let expect = ((NAS_SEED as u128 * NAS_A as u128) & MASK46 as u128) as f64 * 2f64.powi(-46);
        assert_eq!(v, expect);
        assert!(v > 0.0 && v < 1.0);
    }

    #[test]
    fn jump_ahead_matches_sequential() {
        for n in [0u64, 1, 2, 7, 100, 12345] {
            let mut seq = NasRng::nas(NAS_SEED);
            for _ in 0..n {
                seq.next_f64();
            }
            let jump = NasRng::nas(NAS_SEED).at_offset(n);
            assert_eq!(seq.seed(), jump.seed(), "n={n}");
        }
    }

    #[test]
    fn disjoint_blocks_tile_the_sequence() {
        // Generate 1000 values sequentially and via 10 jumped blocks.
        let mut seq = NasRng::nas(12345);
        let all: Vec<f64> = (0..1000).map(|_| seq.next_f64()).collect();
        let mut tiled = Vec::new();
        for b in 0..10 {
            let mut r = NasRng::nas(12345).at_offset(b * 100);
            for _ in 0..100 {
                tiled.push(r.next_f64());
            }
        }
        assert_eq!(all, tiled);
    }

    #[test]
    fn pow46_identities() {
        assert_eq!(pow46(NAS_A, 0), 1);
        assert_eq!(pow46(NAS_A, 1), NAS_A);
        assert_eq!(pow46(NAS_A, 2), mul46(NAS_A, NAS_A));
        // (a^2)^3 == a^6
        assert_eq!(pow46(pow46(NAS_A, 2), 3), pow46(NAS_A, 6));
    }

    #[test]
    fn uniform_ish_distribution() {
        let mut r = NasRng::nas(NAS_SEED);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
