//! Helmholtz equation solver (the `jacobi.f` OpenMP sample the paper uses,
//! §6.2): solves `(∂²/∂x² + ∂²/∂y² - α)u = f` on a regular mesh with a
//! Jacobi iteration + over-relaxation.
//!
//! Each iteration copies `u` into `uold`, applies the 5-point stencil, and
//! reduces the residual — the "shared variable updated competitively to
//! check the threshold" that ParADE turns into a reduction collective,
//! making the program scale nearly linearly (Figure 10).

use parade_core::{Cluster, RunReport, ThreadCtx};

/// Problem setup (defaults follow the openmp.org driver: α=0.0543,
/// ω=0.9, tol=1e-7).
#[derive(Debug, Clone, Copy)]
pub struct HelmholtzParams {
    pub n: usize,
    pub m: usize,
    pub alpha: f64,
    pub omega: f64,
    pub tol: f64,
    pub max_iters: usize,
}

impl Default for HelmholtzParams {
    fn default() -> Self {
        HelmholtzParams {
            n: 200,
            m: 200,
            alpha: 0.0543,
            omega: 0.9,
            tol: 1e-7,
            max_iters: 1000,
        }
    }
}

impl HelmholtzParams {
    pub fn sized(n: usize, m: usize, max_iters: usize) -> Self {
        HelmholtzParams {
            n,
            m,
            max_iters,
            ..HelmholtzParams::default()
        }
    }

    fn dx(&self) -> f64 {
        2.0 / (self.n as f64 - 1.0)
    }

    fn dy(&self) -> f64 {
        2.0 / (self.m as f64 - 1.0)
    }

    /// Driver right-hand side for the manufactured solution
    /// `u = (1-x²)(1-y²)`.
    fn rhs(&self, i: usize, j: usize) -> f64 {
        let x = -1.0 + self.dx() * i as f64;
        let y = -1.0 + self.dy() * j as f64;
        -self.alpha * (1.0 - x * x) * (1.0 - y * y) - 2.0 * (1.0 - x * x) - 2.0 * (1.0 - y * y)
    }

    /// The exact solution at grid point (i, j).
    pub fn exact(&self, i: usize, j: usize) -> f64 {
        let x = -1.0 + self.dx() * i as f64;
        let y = -1.0 + self.dy() * j as f64;
        (1.0 - x * x) * (1.0 - y * y)
    }
}

/// Outcome of a solve.
#[derive(Debug, Clone, Copy)]
pub struct HelmholtzResult {
    /// Final residual (the loop's convergence variable).
    pub error: f64,
    /// Iterations executed.
    pub iters: usize,
    /// RMS error against the manufactured exact solution.
    pub solution_error: f64,
}

fn stencil_coeffs(p: &HelmholtzParams) -> (f64, f64, f64) {
    let ax = 1.0 / (p.dx() * p.dx());
    let ay = 1.0 / (p.dy() * p.dy());
    let b = -2.0 * ax - 2.0 * ay - p.alpha;
    (ax, ay, b)
}

/// Sequential reference solver.
pub fn helmholtz_sequential(p: HelmholtzParams) -> HelmholtzResult {
    let (n, m) = (p.n, p.m);
    let (ax, ay, b) = stencil_coeffs(&p);
    let mut u = vec![0.0f64; n * m];
    let mut uold = vec![0.0f64; n * m];
    let f: Vec<f64> = (0..n * m).map(|k| p.rhs(k / m, k % m)).collect();
    let mut error = 10.0 * p.tol;
    let mut iters = 0;
    while iters < p.max_iters && error > p.tol {
        uold.copy_from_slice(&u);
        error = 0.0;
        for i in 1..n - 1 {
            for j in 1..m - 1 {
                let resid = (ax * (uold[(i - 1) * m + j] + uold[(i + 1) * m + j])
                    + ay * (uold[i * m + j - 1] + uold[i * m + j + 1])
                    + b * uold[i * m + j]
                    - f[i * m + j])
                    / b;
                u[i * m + j] = uold[i * m + j] - p.omega * resid;
                error += resid * resid;
            }
        }
        error = error.sqrt() / (n * m) as f64;
        iters += 1;
    }
    HelmholtzResult {
        error,
        iters,
        solution_error: rms_error(&p, &u),
    }
}

fn rms_error(p: &HelmholtzParams, u: &[f64]) -> f64 {
    let (n, m) = (p.n, p.m);
    let mut e = 0.0;
    for i in 0..n {
        for j in 0..m {
            let d = u[i * m + j] - p.exact(i, j);
            e += d * d;
        }
    }
    (e / (n * m) as f64).sqrt()
}

/// ParADE solver: rows partitioned across threads; `u`/`uold` live in the
/// DSM (neighbour rows travel between adjacent nodes); the per-iteration
/// residual is a reduction collective.
pub fn helmholtz_parade(cluster: &Cluster, p: HelmholtzParams) -> (HelmholtzResult, RunReport) {
    let (n, m) = (p.n, p.m);
    cluster.run_with_report(move |g| {
        let u = g.alloc_f64(n * m);
        let uold = g.alloc_f64(n * m);
        let fv = g.alloc_f64(n * m);

        let (error, iters) = g.parallel(move |tc: &ThreadCtx| {
            let rows = tc.for_static(0..n);
            let (ax, ay, b) = stencil_coeffs(&p);
            // Initialize owned rows of f and u.
            {
                let mut finit = vec![0.0f64; rows.len() * m];
                for (bi, i) in rows.clone().enumerate() {
                    for j in 0..m {
                        finit[bi * m + j] = p.rhs(i, j);
                    }
                }
                tc.write_from(&fv, rows.start * m, &finit);
                tc.write_from(&u, rows.start * m, &vec![0.0; rows.len() * m]);
            }
            tc.barrier();

            // Interior row span owned by this thread.
            let lo = rows.start.max(1);
            let hi = rows.end.min(n - 1);
            let mut fl = vec![0.0f64; rows.len() * m];
            tc.read_into(&fv, rows.start * m, &mut fl);

            let mut error = 10.0 * p.tol;
            let mut iters = 0usize;
            let mut urows = vec![0.0f64; rows.len() * m];
            let mut halo = vec![0.0f64; (rows.len() + 2) * m];
            while iters < p.max_iters && error > p.tol {
                // uold = u (owned rows).
                tc.read_into(&u, rows.start * m, &mut urows);
                tc.write_from(&uold, rows.start * m, &urows);
                tc.barrier();
                // Read uold with one halo row above and below.
                let hstart = rows.start.saturating_sub(1);
                let hend = (rows.end + 1).min(n);
                let hrows = hend - hstart;
                tc.read_into(&uold, hstart * m, &mut halo[..hrows * m]);
                let at = |i: usize, j: usize| halo[(i - hstart) * m + j];
                let mut local_err = 0.0;
                for i in lo..hi {
                    let bi = i - rows.start;
                    for j in 1..m - 1 {
                        let resid = (ax * (at(i - 1, j) + at(i + 1, j))
                            + ay * (at(i, j - 1) + at(i, j + 1))
                            + b * at(i, j)
                            - fl[bi * m + j])
                            / b;
                        urows[bi * m + j] = at(i, j) - p.omega * resid;
                        local_err += resid * resid;
                    }
                }
                tc.write_from(&u, rows.start * m, &urows);
                // The competitively-updated threshold variable becomes one
                // reduction collective per iteration (§6.2).
                error = tc.reduce_f64_sum(local_err).sqrt() / (n * m) as f64;
                tc.barrier();
                iters += 1;
            }
            (error, iters)
        });

        // RMS error against the exact solution, computed serially.
        let mut ufinal = vec![0.0f64; n * m];
        g.read_into(&u, 0, &mut ufinal);
        let _ = uold;
        HelmholtzResult {
            error,
            iters,
            solution_error: rms_error(&p, &ufinal),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_converges_toward_exact_solution() {
        // Jacobi converges at 1 - O(h²) per sweep, so use a small grid
        // with plenty of iterations.
        let p = HelmholtzParams::sized(24, 24, 2000);
        let r = helmholtz_sequential(p);
        assert!(r.iters > 10);
        assert!(r.solution_error < 0.05, "rms {}", r.solution_error);
    }

    #[test]
    fn rhs_is_symmetric() {
        let p = HelmholtzParams::sized(21, 21, 1);
        assert!((p.rhs(3, 7) - p.rhs(7, 3)).abs() < 1e-12);
        assert!((p.exact(0, 5)).abs() < 1e-12, "boundary is zero");
    }
}
