//! EPCC-style directive overhead microbenchmarks (J.M. Bull's method,
//! which the paper uses for §6.1): the overhead of a directive is the
//! difference between a parallel region executing the directive
//! `reps` times and an identical reference region without it, divided by
//! the repetition count.
//!
//! Running the same measurement under `ProtocolMode::Parade` and
//! `ProtocolMode::SdsmOnly` regenerates the ParADE-vs-KDSM comparison of
//! Figures 6 and 7.

use parade_cluster::ClusterConfig;
use parade_core::{Cluster, ReduceOp, SharedScalar, ThreadCtx};

/// Directives measurable by the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Directive {
    /// `critical` enclosing a small analyzable update (Figure 6).
    Critical,
    /// `single` initializing a small shared variable (Figure 7).
    Single,
    /// `barrier`.
    Barrier,
    /// `reduction` clause.
    Reduction,
    /// `atomic`.
    Atomic,
}

impl Directive {
    pub fn label(self) -> &'static str {
        match self {
            Directive::Critical => "critical",
            Directive::Single => "single",
            Directive::Barrier => "barrier",
            Directive::Reduction => "reduction",
            Directive::Atomic => "atomic",
        }
    }
}

fn run_reps(d: Option<Directive>, tc: &ThreadCtx, s: &SharedScalar<f64>, reps: usize) -> f64 {
    let mut acc = 0.0;
    for k in 0..reps {
        match d {
            None => {
                // Reference body: the same trivial computation, no
                // synchronization construct around it.
                acc += k as f64 * 1e-9;
            }
            Some(Directive::Critical) => {
                acc = tc.critical_reduce_f64(s, ReduceOp::Sum, 1.0);
            }
            Some(Directive::Single) => {
                acc = tc.single_f64(s, |_| k as f64);
            }
            Some(Directive::Barrier) => {
                tc.barrier();
            }
            Some(Directive::Reduction) => {
                acc = tc.reduce_f64_sum(1.0);
            }
            Some(Directive::Atomic) => {
                acc = tc.atomic_add_f64(s, 1.0);
            }
        }
    }
    acc
}

fn region_time_us(cfg: &ClusterConfig, d: Option<Directive>, reps: usize) -> f64 {
    let cluster = Cluster::from_config(cfg.clone());
    let (_, report) = cluster.run_with_report(move |g| {
        let s = g.alloc_scalar_f64();
        g.parallel(move |tc| {
            std::hint::black_box(run_reps(d, tc, &s, reps));
        });
    });
    report.exec_time.as_micros_f64()
}

/// Measured overhead of one directive.
#[derive(Debug, Clone, Copy)]
pub struct Overhead {
    pub directive: Directive,
    pub reps: usize,
    /// Microseconds per construct execution (EPCC-style difference).
    pub per_op_us: f64,
}

/// Measure `directive` under `cfg` with `reps` repetitions.
pub fn measure(cfg: &ClusterConfig, directive: Directive, reps: usize) -> Overhead {
    assert!(reps > 0 && reps < (1 << 19), "reps out of slot range");
    let t_test = region_time_us(cfg, Some(directive), reps);
    let t_ref = region_time_us(cfg, None, reps);
    Overhead {
        directive,
        reps,
        per_op_us: ((t_test - t_ref) / reps as f64).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parade_cluster::{ExecConfig, ProtocolMode};
    use parade_core::{NetProfile, TimeSource};

    fn cfg(nodes: usize, mode: ProtocolMode) -> ClusterConfig {
        ClusterConfig {
            nodes,
            exec: ExecConfig::OneThreadTwoCpu,
            protocol: mode,
            net: NetProfile::clan_via(),
            time: TimeSource::Manual,
            pool_bytes: 256 * parade_dsm::PAGE_SIZE,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn critical_parade_beats_sdsm_at_scale() {
        // The essence of Figure 6: on multiple nodes the collective path
        // is cheaper than the distributed-lock path.
        let reps = 30;
        let parade = measure(&cfg(4, ProtocolMode::Parade), Directive::Critical, reps);
        let sdsm = measure(&cfg(4, ProtocolMode::SdsmOnly), Directive::Critical, reps);
        assert!(
            parade.per_op_us < sdsm.per_op_us,
            "parade {} vs sdsm {}",
            parade.per_op_us,
            sdsm.per_op_us
        );
    }

    #[test]
    fn single_parade_beats_sdsm_at_scale() {
        let reps = 30;
        let parade = measure(&cfg(4, ProtocolMode::Parade), Directive::Single, reps);
        let sdsm = measure(&cfg(4, ProtocolMode::SdsmOnly), Directive::Single, reps);
        assert!(
            parade.per_op_us < sdsm.per_op_us,
            "parade {} vs sdsm {}",
            parade.per_op_us,
            sdsm.per_op_us
        );
    }

    #[test]
    fn overheads_grow_with_node_count() {
        let reps = 20;
        let d2 = measure(&cfg(2, ProtocolMode::Parade), Directive::Barrier, reps);
        let d8 = measure(&cfg(8, ProtocolMode::Parade), Directive::Barrier, reps);
        assert!(
            d8.per_op_us > d2.per_op_us,
            "2 nodes {} vs 8 nodes {}",
            d2.per_op_us,
            d8.per_op_us
        );
    }
}
