//! Pipeline workload: `items × stages` dependency chains through the task
//! scheduler's `depend`/inject dataflow.
//!
//! Item `i` flows through `stages` transformation stages; stage `s` depends
//! on stage `s-1` and receives its predecessor's result through result
//! injection (the scheduler appends each dependency's output to the task's
//! args, bit-for-bit). The whole chain for item `i` is spawned by node
//! `i % nnodes` — dependency edges are resolved at the spawning (home)
//! node — but the released tasks themselves migrate freely under work
//! stealing, so different items' stages overlap across the cluster like a
//! software pipeline.
//!
//! Because every stage is a pure function of its injected input and the
//! merge is id-ordered, the output is **bit-identical** to the sequential
//! fold for any steal schedule, seed, or chaos fault pattern.

use std::sync::Arc;

use parade_core::{Cluster, RunReport, TaskFn};

#[derive(Debug, Clone, Copy)]
pub struct PipelineParams {
    /// Independent work items flowing through the pipeline.
    pub items: usize,
    /// Stages each item passes through (the length of each dep chain).
    pub stages: usize,
    /// Seed for the per-item initial values.
    pub seed: u64,
}

impl Default for PipelineParams {
    fn default() -> Self {
        PipelineParams {
            items: 16,
            stages: 4,
            seed: 0x9E37_79B9,
        }
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic initial value for item `i`, in `[0, 1)`.
fn initial(p: &PipelineParams, item: usize) -> f64 {
    (splitmix(p.seed ^ item as u64) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The stage transformation: a pure function of the stage index and the
/// incoming value (an affine map with stage-dependent coefficients).
fn stage_fn(stage: usize, v: f64) -> f64 {
    let s = stage as f64;
    v * (1.0 + 0.5 * s) + 0.25 * (s + 1.0)
}

/// Sequential reference: fold each item through all stages.
pub fn pipeline_sequential(p: PipelineParams) -> Vec<f64> {
    (0..p.items)
        .map(|i| (0..p.stages).fold(initial(&p, i), |v, s| stage_fn(s, v)))
        .collect()
}

/// Root-task id of stage `s` of item `i` (spawned by node `i % nn` as its
/// `(i / nn) * stages + s`-th spawn); mirrors the scheduler's id scheme.
fn stage_task_id(i: usize, s: usize, stages: usize, nn: usize) -> u64 {
    let ord = ((i / nn) * stages + s) as u64;
    2 * (ord * nn as u64 + (i % nn) as u64) + 1
}

/// Distributed pipeline: one task phase; node `i % nn` spawns item `i`'s
/// whole stage chain with `depend`+inject edges; stages execute wherever
/// the steal schedule sends them.
pub fn pipeline_parade(cluster: &Cluster, p: PipelineParams) -> (Vec<f64>, RunReport) {
    cluster.run_with_report(move |g| {
        g.parallel(move |tc| {
            let funcs: Vec<TaskFn> = vec![Arc::new(|_tc, d, _s| {
                let stage = d.args[1] as usize;
                // args[2] is either the seed value (stage 0) or the
                // injected result of the previous stage.
                vec![stage_fn(stage, f64::from_bits(d.args[2]))]
            })];
            let merged = tc.task_phase(&funcs, |scope| {
                let (n, nn) = (scope.node(), scope.num_nodes());
                for i in 0..p.items {
                    if i % nn != n {
                        continue;
                    }
                    let mut prev = scope.spawn(0, vec![i as u64, 0, initial(&p, i).to_bits()]);
                    for s in 1..p.stages {
                        prev = scope.spawn_with_deps(0, vec![i as u64, s as u64], vec![prev], true);
                    }
                }
            });
            merged.map(|m| {
                assert_eq!(m.len(), p.items * p.stages, "one result per stage task");
                let nn = tc.num_nodes();
                let by_id: std::collections::HashMap<u64, f64> =
                    m.into_iter().map(|(id, r)| (id, r[0])).collect();
                (0..p.items)
                    .map(|i| by_id[&stage_task_id(i, p.stages - 1, p.stages, nn)])
                    .collect::<Vec<f64>>()
            })
        })
        .expect("master thread is a lead")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parade_core::{NetProfile, SchedConfig, StealStrategy, TimeSource};

    fn cluster(nodes: usize, sched: SchedConfig) -> Cluster {
        Cluster::builder()
            .nodes(nodes)
            .threads_per_node(1)
            .net(NetProfile::zero())
            .time(TimeSource::Manual)
            .pool_bytes(64 * parade_dsm::PAGE_SIZE)
            .task_scheduler(sched)
            .build()
            .unwrap()
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn pipeline_matches_sequential_bitwise() {
        let p = PipelineParams::default();
        let seq = pipeline_sequential(p);
        let c = cluster(3, SchedConfig::default());
        let (par, _) = pipeline_parade(&c, p);
        assert_eq!(bits(&seq), bits(&par));
    }

    #[test]
    fn pipeline_is_bit_identical_across_steal_seeds_and_strategies() {
        let p = PipelineParams {
            items: 9,
            stages: 5,
            ..PipelineParams::default()
        };
        let mut all = vec![bits(&pipeline_sequential(p))];
        for seed in [3u64, 0xFACE, 1_000_003] {
            let c = cluster(
                4,
                SchedConfig {
                    seed,
                    ..SchedConfig::default()
                },
            );
            let (r, _) = pipeline_parade(&c, p);
            all.push(bits(&r));
        }
        let c = cluster(
            4,
            SchedConfig {
                strategy: StealStrategy::Flat,
                ..SchedConfig::default()
            },
        );
        let (flat, _) = pipeline_parade(&c, p);
        all.push(bits(&flat));
        for w in all.windows(2) {
            assert_eq!(w[0], w[1], "steal schedule changed pipeline output");
        }
    }

    #[test]
    fn pipeline_survives_chaos() {
        let p = PipelineParams {
            items: 6,
            stages: 3,
            ..PipelineParams::default()
        };
        let seq = pipeline_sequential(p);
        let c = Cluster::builder()
            .nodes(2)
            .threads_per_node(1)
            .net(NetProfile::zero())
            .time(TimeSource::Manual)
            .pool_bytes(64 * parade_dsm::PAGE_SIZE)
            .chaos(parade_net::ChaosProfile::lossy(11))
            .build()
            .unwrap();
        let (par, _) = pipeline_parade(&c, p);
        assert_eq!(bits(&seq), bits(&par), "chaos changed pipeline output");
    }

    #[test]
    fn stage_fn_composition_is_what_the_reference_computes() {
        let p = PipelineParams {
            items: 2,
            stages: 3,
            ..PipelineParams::default()
        };
        let out = pipeline_sequential(p);
        let hand = stage_fn(2, stage_fn(1, stage_fn(0, initial(&p, 1))));
        assert_eq!(out[1].to_bits(), hand.to_bits());
    }
}
