//! # parade-kernels — the paper's workloads
//!
//! Everything §6 of the paper measures, each with a sequential reference
//! implementation and a ParADE (runtime API) implementation:
//!
//! * [`ep`] — NAS EP class S/W/A (Figure 9), with the NPB verification
//!   sums;
//! * [`cg`] — NAS CG class S/W/A (Figure 8), with a faithful port of the
//!   NPB `makea` sparse-matrix generator and published ζ verification;
//! * [`helmholtz`] — the openmp.org Jacobi/Helmholtz sample (Figure 10);
//! * [`md`] — the openmp.org molecular dynamics sample (Figure 11);
//! * [`syncbench`] — EPCC-style directive overhead measurements
//!   (Figures 6 and 7);
//! * [`nasrng`] — the NPB 46-bit LCG with O(log n) jump-ahead.
//!
//! Two irregular workloads exercise the task scheduler (`parade-tasks`):
//!
//! * [`nbody_task`] — the MD force computation as a stolen task graph,
//!   bit-identical across steal schedules;
//! * [`pipeline`] — `items × stages` dependency chains with result
//!   injection, a software pipeline across the cluster.

pub mod cg;
pub mod ep;
pub mod helmholtz;
pub mod md;
pub mod nasrng;
pub mod nbody_task;
pub mod pipeline;
pub mod syncbench;
