//! NAS CG (Conjugate Gradient) kernel, NPB 2.3.
//!
//! Estimates the smallest eigenvalue of a sparse symmetric positive
//! definite matrix by inverse power iteration, each step solving `Az = x`
//! with 25 conjugate-gradient iterations. The random matrix generator
//! (`makea`/`sprnvc`/`vecset`/`sparse`) is ported faithfully from NPB 2.3
//! so the published verification values of ζ hold.
//!
//! CG is the paper's communication-heavy benchmark (Figure 8): the search
//! direction `p` is read in full by every node each iteration (page
//! traffic), and the dot products become allreduce collectives.

use parade_core::{Cluster, MasterCtx, ReduceOp, RunReport, SharedVec, ThreadCtx};

use crate::nasrng::NasRng;

/// NAS CG problem classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CgClass {
    S,
    W,
    A,
}

/// Class parameters: (na, nonzer, shift, niter) and the published ζ.
#[derive(Debug, Clone, Copy)]
pub struct CgParams {
    pub na: usize,
    pub nonzer: usize,
    pub shift: f64,
    pub niter: usize,
    pub zeta_verify: f64,
}

impl CgClass {
    pub fn params(self) -> CgParams {
        match self {
            CgClass::S => CgParams {
                na: 1400,
                nonzer: 7,
                shift: 10.0,
                niter: 15,
                zeta_verify: 8.597_177_507_864_8,
            },
            CgClass::W => CgParams {
                na: 7000,
                nonzer: 8,
                shift: 12.0,
                niter: 15,
                zeta_verify: 10.362_595_087_124,
            },
            CgClass::A => CgParams {
                na: 14000,
                nonzer: 11,
                shift: 20.0,
                niter: 15,
                zeta_verify: 17.130_235_054_029,
            },
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            CgClass::S => "S",
            CgClass::W => "W",
            CgClass::A => "A",
        }
    }
}

const RCOND: f64 = 0.1;
const CGITMAX: usize = 25;

/// Sparse matrix in CSR form (0-based).
#[derive(Debug, Clone)]
pub struct Csr {
    pub n: usize,
    pub a: Vec<f64>,
    pub colidx: Vec<u32>,
    pub rowstr: Vec<u64>,
}

impl Csr {
    pub fn nnz(&self) -> usize {
        self.a.len()
    }

    /// `out = A * v` over rows `rows` (half-open).
    pub fn spmv_rows(&self, v: &[f64], rows: std::ops::Range<usize>, out: &mut [f64]) {
        for (oi, i) in rows.enumerate() {
            let mut sum = 0.0;
            for k in self.rowstr[i] as usize..self.rowstr[i + 1] as usize {
                sum += self.a[k] * v[self.colidx[k] as usize];
            }
            out[oi] = sum;
        }
    }
}

/// The NPB random-sparse-matrix generator. Indexing follows the original
/// 1-based Fortran/C layout internally and converts to 0-based CSR at the
/// end.
pub fn makea(class: CgClass) -> Csr {
    let p = class.params();
    let n = p.na;
    let nonzer = p.nonzer;
    let nz = n * (nonzer + 1) * (nonzer + 1) + n * (nonzer + 2);
    // The NPB driver warms the stream once (`zeta = randlc(&tran, amult)`)
    // before calling makea.
    let mut rng = NasRng::nas(crate::nasrng::NAS_SEED);
    let _zeta0 = rng.next_f64();

    let mut arow = vec![0usize; nz + 1];
    let mut acol = vec![0usize; nz + 1];
    let mut aelt = vec![0f64; nz + 1];
    let mut v = vec![0f64; n + 2];
    let mut iv = vec![0usize; n + 2];
    let mut mark = vec![false; n + 2];
    let mut nzloc = vec![0usize; n + 2];

    let (firstrow, lastrow, firstcol, lastcol) = (1usize, n, 1usize, n);
    let mut size = 1.0f64;
    let ratio = RCOND.powf(1.0 / n as f64);
    let mut nnza = 0usize;

    for iouter in 1..=n {
        let mut nzv = nonzer;
        sprnvc(
            n, &mut nzv, &mut v, &mut iv, &mut mark, &mut nzloc, &mut rng,
        );
        vecset(&mut v, &mut iv, &mut nzv, iouter, 0.5);
        for ivelt in 1..=nzv {
            let jcol = iv[ivelt];
            if jcol >= firstcol && jcol <= lastcol {
                let scale = size * v[ivelt];
                for ivelt1 in 1..=nzv {
                    let irow = iv[ivelt1];
                    if irow >= firstrow && irow <= lastrow {
                        nnza += 1;
                        assert!(nnza <= nz, "space for matrix elements exceeded");
                        acol[nnza] = jcol;
                        arow[nnza] = irow;
                        aelt[nnza] = v[ivelt1] * scale;
                    }
                }
            }
        }
        size *= ratio;
    }

    // Add the identity * (rcond - shift) to the diagonal.
    for i in firstrow..=lastrow {
        if i >= firstcol && i <= lastcol {
            nnza += 1;
            assert!(nnza <= nz);
            acol[nnza] = i;
            arow[nnza] = i;
            aelt[nnza] = RCOND - p.shift;
        }
    }

    sparse(
        n, &arow, &acol, &aelt, nnza, firstrow, lastrow, &mut v, &mut mark, &mut nzloc,
    )
}

/// Generate a sparse vector of `*nzv` random (value, index) pairs with
/// distinct indices (NPB `sprnvc`).
fn sprnvc(
    n: usize,
    nzv: &mut usize,
    v: &mut [f64],
    iv: &mut [usize],
    mark: &mut [bool],
    nzloc: &mut [usize],
    rng: &mut NasRng,
) {
    let target = *nzv;
    let mut nn1 = 1usize;
    while nn1 < n {
        nn1 <<= 1;
    }
    let mut nzrow = 0usize;
    let mut got = 0usize;
    while got < target {
        let vecelt = rng.next_f64();
        let vecloc = rng.next_f64();
        let i = (vecloc * nn1 as f64) as usize + 1;
        if i > n {
            continue;
        }
        if !mark[i] {
            mark[i] = true;
            nzrow += 1;
            nzloc[nzrow] = i;
            got += 1;
            v[got] = vecelt;
            iv[got] = i;
        }
    }
    for &i in &nzloc[1..=nzrow] {
        mark[i] = false;
    }
    *nzv = got;
}

/// Force value `val` at index `i` (NPB `vecset`).
fn vecset(v: &mut [f64], iv: &mut [usize], nzv: &mut usize, i: usize, val: f64) {
    let mut set = false;
    for k in 1..=*nzv {
        if iv[k] == i {
            v[k] = val;
            set = true;
        }
    }
    if !set {
        *nzv += 1;
        v[*nzv] = val;
        iv[*nzv] = i;
    }
}

/// Assemble the triples into CSR, summing duplicates (NPB `sparse`).
#[allow(clippy::too_many_arguments)]
fn sparse(
    n: usize,
    arow: &[usize],
    acol: &[usize],
    aelt: &[f64],
    nnza: usize,
    firstrow: usize,
    lastrow: usize,
    x: &mut [f64],
    mark: &mut [bool],
    nzloc: &mut [usize],
) -> Csr {
    let nrows = lastrow - firstrow + 1;
    let mut rowstr = vec![0usize; nrows + 2];
    let mut a = vec![0f64; nnza + 1];
    let mut colidx = vec![0usize; nnza + 1];

    for &row in &arow[1..=nnza] {
        let j = (row - firstrow + 1) + 1;
        rowstr[j] += 1;
    }
    rowstr[1] = 1;
    for j in 2..=nrows + 1 {
        rowstr[j] += rowstr[j - 1];
    }

    // Bucket sort triples by row.
    for nza in 1..=nnza {
        let j = arow[nza] - firstrow + 1;
        let k = rowstr[j];
        a[k] = aelt[nza];
        colidx[k] = acol[nza];
        rowstr[j] += 1;
    }
    for j in (1..=nrows).rev() {
        rowstr[j + 1] = rowstr[j];
    }
    rowstr[1] = 1;

    // Merge duplicate column entries within each row.
    let mut nza = 0usize;
    for i in 1..=n {
        x[i] = 0.0;
        mark[i] = false;
    }
    let mut jajp1 = rowstr[1];
    for j in 1..=nrows {
        let mut nzrow = 0usize;
        for k in jajp1..rowstr[j + 1] {
            let i = colidx[k];
            x[i] += a[k];
            if !mark[i] && x[i] != 0.0 {
                mark[i] = true;
                nzrow += 1;
                nzloc[nzrow] = i;
            }
        }
        for &i in &nzloc[1..=nzrow] {
            mark[i] = false;
            let xi = x[i];
            x[i] = 0.0;
            if xi != 0.0 {
                nza += 1;
                a[nza] = xi;
                colidx[nza] = i;
            }
        }
        jajp1 = rowstr[j + 1];
        rowstr[j + 1] = nza + rowstr[1];
    }

    // Convert to 0-based CSR.
    let mut out_rowstr = vec![0u64; nrows + 1];
    for j in 1..=nrows + 1 {
        out_rowstr[j - 1] = (rowstr[j] - 1) as u64;
    }
    let mut out_a = vec![0f64; nza];
    let mut out_col = vec![0u32; nza];
    for k in 1..=nza {
        out_a[k - 1] = a[k];
        out_col[k - 1] = (colidx[k] - 1) as u32;
    }
    // rowstr[0] must be 0 after conversion.
    debug_assert_eq!(out_rowstr[0], 0);
    Csr {
        n,
        a: out_a,
        colidx: out_col,
        rowstr: out_rowstr,
    }
}

/// Result of a CG run.
#[derive(Debug, Clone, Copy)]
pub struct CgResult {
    pub zeta: f64,
    /// Residual norm of the last conjugate-gradient solve.
    pub rnorm: f64,
}

impl CgResult {
    /// NPB verification: |ζ - ζ_ref| ≤ 1e-10.
    pub fn verify(&self, class: CgClass) -> bool {
        (self.zeta - class.params().zeta_verify).abs() <= 1e-10
    }
}

/// One conjugate-gradient solve (25 iterations), sequential.
fn conj_grad_seq(
    m: &Csr,
    x: &[f64],
    z: &mut [f64],
    p: &mut [f64],
    q: &mut [f64],
    r: &mut [f64],
) -> f64 {
    let n = m.n;
    z[..n].fill(0.0);
    r[..n].copy_from_slice(&x[..n]);
    p[..n].copy_from_slice(&x[..n]);
    let mut rho: f64 = r.iter().map(|v| v * v).sum();
    for _ in 0..CGITMAX {
        m.spmv_rows(p, 0..n, q);
        let d: f64 = p.iter().zip(q.iter()).map(|(a, b)| a * b).sum();
        let alpha = rho / d;
        for j in 0..n {
            z[j] += alpha * p[j];
            r[j] -= alpha * q[j];
        }
        let rho0 = rho;
        rho = r.iter().map(|v| v * v).sum();
        let beta = rho / rho0;
        for j in 0..n {
            p[j] = r[j] + beta * p[j];
        }
    }
    // Residual ||x - A z||.
    m.spmv_rows(z, 0..n, q);
    let sum: f64 = x.iter().zip(q.iter()).map(|(a, b)| (a - b) * (a - b)).sum();
    sum.sqrt()
}

/// Sequential reference CG (full NPB driver: untimed warm-up iteration,
/// then `niter` power iterations).
pub fn cg_sequential(class: CgClass) -> CgResult {
    let p = class.params();
    let m = makea(class);
    cg_sequential_on(&m, p.shift, p.niter)
}

/// Run the CG driver on a prebuilt matrix.
pub fn cg_sequential_on(m: &Csr, shift: f64, niter: usize) -> CgResult {
    let n = m.n;
    let mut x = vec![1.0f64; n];
    let mut z = vec![0f64; n];
    let mut pv = vec![0f64; n];
    let mut q = vec![0f64; n];
    let mut r = vec![0f64; n];
    // Untimed warm-up iteration.
    let _ = conj_grad_seq(m, &x, &mut z, &mut pv, &mut q, &mut r);
    let _t1: f64 = x.iter().zip(z.iter()).map(|(a, b)| a * b).sum();
    let t2: f64 = 1.0 / z.iter().map(|v| v * v).sum::<f64>().sqrt();
    for j in 0..n {
        x[j] = t2 * z[j];
    }
    // Reset for the timed part.
    x.fill(1.0);
    let mut zeta = 0.0;
    let mut rnorm = 0.0;
    for _ in 0..niter {
        rnorm = conj_grad_seq(m, &x, &mut z, &mut pv, &mut q, &mut r);
        let t1: f64 = x.iter().zip(z.iter()).map(|(a, b)| a * b).sum();
        let t2: f64 = 1.0 / z.iter().map(|v| v * v).sum::<f64>().sqrt();
        zeta = shift + 1.0 / t1;
        for j in 0..n {
            x[j] = t2 * z[j];
        }
    }
    CgResult { zeta, rnorm }
}

/// Shared-memory layout of the ParADE CG program.
struct CgShared {
    a: SharedVec<f64>,
    colidx: SharedVec<u32>,
    rowstr: SharedVec<u64>,
    x: SharedVec<f64>,
    z: SharedVec<f64>,
    p: SharedVec<f64>,
    q: SharedVec<f64>,
    r: SharedVec<f64>,
}

fn upload_matrix(g: &mut MasterCtx, m: &Csr) -> CgShared {
    let n = m.n;
    let sh = CgShared {
        a: g.alloc_f64(m.nnz()),
        colidx: g.alloc_vec::<u32>(m.nnz()),
        rowstr: g.alloc_vec::<u64>(n + 1),
        x: g.alloc_f64(n),
        z: g.alloc_f64(n),
        p: g.alloc_f64(n),
        q: g.alloc_f64(n),
        r: g.alloc_f64(n),
    };
    g.write_from(&sh.a, 0, &m.a);
    g.write_from(&sh.colidx, 0, &m.colidx);
    g.write_from(&sh.rowstr, 0, &m.rowstr);
    sh
}

/// ParADE CG: rows statically partitioned across threads, `p` (and `z` for
/// the residual) shared through the DSM, dot products through hierarchical
/// allreduce. The matrix pages are read-only after generation and localize
/// after the first touch; the owned segments of `x/z/q/r` localize via
/// migratory home.
pub fn cg_parade(cluster: &Cluster, class: CgClass) -> (CgResult, RunReport) {
    let prm = class.params();
    let m = makea(class);
    cg_parade_on(cluster, m, prm.shift, prm.niter)
}

/// Run the ParADE CG driver on a prebuilt matrix.
pub fn cg_parade_on(cluster: &Cluster, m: Csr, shift: f64, niter: usize) -> (CgResult, RunReport) {
    let n = m.n;
    cluster.run_with_report(move |g| {
        let sh = upload_matrix(g, &m);
        drop(m);
        let zeta_s = g.alloc_scalar_f64();
        let rnorm_s = g.alloc_scalar_f64();
        let (x, z, p, q, r) = (sh.x, sh.z, sh.p, sh.q, sh.r);
        let (a, colidx, rowstr) = (sh.a, sh.colidx, sh.rowstr);

        g.parallel(move |tc: &ThreadCtx| {
            let rows = tc.for_static(0..n);
            let nrows = rows.len();
            let lo = rows.start;

            // Local views of the owned row block and scratch for the full
            // `p`/`z` vectors (bulk reads model the page fetch traffic).
            let mut rowptr = vec![0u64; nrows + 1];
            tc.read_into(&rowstr, lo, &mut rowptr);
            let k0 = rowptr[0] as usize;
            let knnz = rowptr[nrows] as usize - k0;
            let mut la = vec![0f64; knnz];
            let mut lcol = vec![0u32; knnz];
            tc.read_into(&a, k0, &mut la);
            tc.read_into(&colidx, k0, &mut lcol);

            let mut pfull = vec![0f64; n];
            let mut lz = vec![0f64; nrows];
            let mut lr = vec![0f64; nrows];
            let mut lp = vec![0f64; nrows];
            let mut lq = vec![0f64; nrows];
            let mut lx = vec![1.0f64; nrows];

            let spmv = |src: &[f64], out: &mut [f64], la: &[f64], lcol: &[u32], rowptr: &[u64]| {
                for i in 0..out.len() {
                    let mut s = 0.0;
                    for k in rowptr[i] as usize - k0..rowptr[i + 1] as usize - k0 {
                        s += la[k] * src[lcol[k] as usize];
                    }
                    out[i] = s;
                }
            };

            let mut zeta = 0.0;
            let mut rnorm = 0.0;
            // `it == 0` is the untimed warm-up iteration; x resets after.
            for it in 0..=niter {
                // conj_grad
                lz.fill(0.0);
                lr.copy_from_slice(&lx);
                lp.copy_from_slice(&lx);
                // Publish p for everyone's SpMV.
                tc.write_from(&p, lo, &lp);
                let mut rho = tc.reduce_f64_sum(lr.iter().map(|v| v * v).sum());
                tc.barrier();
                for _ in 0..CGITMAX {
                    tc.read_into(&p, 0, &mut pfull);
                    spmv(&pfull, &mut lq, &la, &lcol, &rowptr);
                    let d = tc.reduce_f64_sum(lp.iter().zip(lq.iter()).map(|(a, b)| a * b).sum());
                    let alpha = rho / d;
                    for j in 0..nrows {
                        lz[j] += alpha * lp[j];
                        lr[j] -= alpha * lq[j];
                    }
                    let rho0 = rho;
                    rho = tc.reduce_f64_sum(lr.iter().map(|v| v * v).sum());
                    let beta = rho / rho0;
                    for j in 0..nrows {
                        lp[j] = lr[j] + beta * lp[j];
                    }
                    // Publish the new p before the next SpMV.
                    tc.write_from(&p, lo, &lp);
                    tc.barrier();
                }
                // Residual ||x - A z||: needs the full z.
                tc.write_from(&z, lo, &lz);
                tc.barrier();
                let mut zfull = vec![0f64; n];
                tc.read_into(&z, 0, &mut zfull);
                spmv(&zfull, &mut lq, &la, &lcol, &rowptr);
                let sum = tc.reduce_f64_sum(
                    lx.iter()
                        .zip(lq.iter())
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum(),
                );
                rnorm = sum.sqrt();

                // Power-iteration bookkeeping.
                let t = tc.reduce_f64s(
                    ReduceOp::Sum,
                    &[
                        lx.iter().zip(lz.iter()).map(|(a, b)| a * b).sum(),
                        lz.iter().map(|v| v * v).sum(),
                    ],
                );
                let t1 = t[0];
                let t2 = 1.0 / t[1].sqrt();
                zeta = shift + 1.0 / t1;
                for j in 0..nrows {
                    lx[j] = t2 * lz[j];
                }
                if it == 0 {
                    // End of warm-up: reset x.
                    lx.fill(1.0);
                    zeta = 0.0;
                }
            }
            // Publish final x (so the master could inspect it) and the
            // scalars via the update protocol.
            tc.write_from(&x, lo, &lx);
            tc.master(|tc| {
                let _ = tc;
            });
            tc.atomic_f64(&zeta_s, ReduceOp::Max, zeta);
            tc.atomic_f64(&rnorm_s, ReduceOp::Max, rnorm);
        });
        let zeta = g.scalar_get_f64(&zeta_s);
        let rnorm = g.scalar_get_f64(&rnorm_s);
        // Silence unused warnings for the shared q/r handles kept for
        // parity with the NPB layout.
        let _ = (q, r);
        CgResult { zeta, rnorm }
    })
}

/// Pure message-passing CG (the MPI baseline of the paper's related-work
/// discussion [8]: SDSM versions achieve about half the MPI performance).
/// One rank per node, rows partitioned per rank, `p`/`z` exchanged by
/// allgather, dot products by allreduce — no shared memory at all.
pub fn cg_mpi(cfg: parade_cluster::ClusterConfig, class: CgClass) -> (CgResult, parade_net::VTime) {
    let prm = class.params();
    let m = std::sync::Arc::new(makea(class));
    let shift = prm.shift;
    let niter = prm.niter;
    let n = m.n;
    let (results, _report) = parade_cluster::launch(cfg, move |env| {
        use parade_core::partition;
        use parade_mpi::datatype;
        let mut clk = env.new_clock();
        let rows = partition(0..n, env.nnodes, env.node);
        let nrows = rows.len();
        let comm = env.comm;

        // Allgather helper: exchange each rank's row block of `local`,
        // producing the full vector.
        let allgather_rows = |local: &[f64], full: &mut [f64], clk: &mut parade_net::VClock| {
            let parts = comm.allgather_bytes(datatype::f64s_to_bytes(local), clk);
            for (r, part) in parts.iter().enumerate() {
                let rr = partition(0..n, comm.size(), r);
                datatype::read_f64s_into(part, &mut full[rr.start..rr.end]);
            }
        };

        let mut lx = vec![1.0f64; nrows];
        let mut lz = vec![0f64; nrows];
        let mut lr = vec![0f64; nrows];
        let mut lp = vec![0f64; nrows];
        let mut lq = vec![0f64; nrows];
        let mut pfull = vec![0f64; n];
        let mut zeta = 0.0;
        let mut rnorm = 0.0;
        for it in 0..=niter {
            lz.fill(0.0);
            lr.copy_from_slice(&lx);
            lp.copy_from_slice(&lx);
            let mut rho = comm.allreduce_f64(
                lr.iter().map(|v| v * v).sum(),
                parade_mpi::ReduceOp::Sum,
                &mut clk,
            );
            for _ in 0..CGITMAX {
                allgather_rows(&lp, &mut pfull, &mut clk);
                m.spmv_rows(&pfull, rows.clone(), &mut lq);
                let d = comm.allreduce_f64(
                    lp.iter().zip(lq.iter()).map(|(a, b)| a * b).sum(),
                    parade_mpi::ReduceOp::Sum,
                    &mut clk,
                );
                let alpha = rho / d;
                for j in 0..nrows {
                    lz[j] += alpha * lp[j];
                    lr[j] -= alpha * lq[j];
                }
                let rho0 = rho;
                rho = comm.allreduce_f64(
                    lr.iter().map(|v| v * v).sum(),
                    parade_mpi::ReduceOp::Sum,
                    &mut clk,
                );
                let beta = rho / rho0;
                for j in 0..nrows {
                    lp[j] = lr[j] + beta * lp[j];
                }
            }
            let mut zfull = vec![0f64; n];
            allgather_rows(&lz, &mut zfull, &mut clk);
            m.spmv_rows(&zfull, rows.clone(), &mut lq);
            let sum = comm.allreduce_f64(
                lx.iter()
                    .zip(lq.iter())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum(),
                parade_mpi::ReduceOp::Sum,
                &mut clk,
            );
            rnorm = sum.sqrt();
            let t = {
                let t1: f64 = lx.iter().zip(lz.iter()).map(|(a, b)| a * b).sum();
                let t2: f64 = lz.iter().map(|v| v * v).sum();
                let mut buf = [t1, t2];
                comm.allreduce_f64s(&mut buf, parade_mpi::ReduceOp::Sum, &mut clk);
                buf
            };
            zeta = shift + 1.0 / t[0];
            let t2 = 1.0 / t[1].sqrt();
            for j in 0..nrows {
                lx[j] = t2 * lz[j];
            }
            if it == 0 {
                lx.fill(1.0);
                zeta = 0.0;
            }
        }
        (CgResult { zeta, rnorm }, clk.now())
    });
    let mut max_t = parade_net::VTime::ZERO;
    let mut res = results[0].0;
    for (r, t) in results {
        max_t = max_t.max(t);
        res = r;
    }
    (res, max_t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makea_class_s_shape() {
        let m = makea(CgClass::S);
        assert_eq!(m.n, 1400);
        assert_eq!(m.rowstr.len(), 1401);
        assert_eq!(m.rowstr[0], 0);
        assert_eq!(*m.rowstr.last().unwrap() as usize, m.nnz());
        // Every row non-empty, has a diagonal entry, and indices in range.
        for i in 0..m.n {
            let (s, e) = (m.rowstr[i] as usize, m.rowstr[i + 1] as usize);
            assert!(e > s, "row {i} empty");
            assert!(
                m.colidx[s..e].iter().any(|&c| c as usize == i),
                "row {i} lacks diagonal"
            );
            for &c in &m.colidx[s..e] {
                assert!((c as usize) < m.n);
            }
        }
    }

    #[test]
    fn makea_is_symmetric() {
        let m = makea(CgClass::S);
        // Spot-check symmetry on a sample of entries.
        let find = |i: usize, j: usize| -> Option<f64> {
            let (s, e) = (m.rowstr[i] as usize, m.rowstr[i + 1] as usize);
            (s..e).find(|&k| m.colidx[k] as usize == j).map(|k| m.a[k])
        };
        let mut checked = 0;
        for i in (0..m.n).step_by(97) {
            let (s, e) = (m.rowstr[i] as usize, m.rowstr[i + 1] as usize);
            for k in s..e {
                let j = m.colidx[k] as usize;
                let aij = m.a[k];
                let aji = find(j, i).expect("missing symmetric entry");
                assert!((aij - aji).abs() < 1e-12);
                checked += 1;
            }
        }
        assert!(checked > 100);
    }

    // Full ζ verification (classes S and W) lives in tests/kernels.rs and
    // runs in release mode.
}
