//! Global trace session: enable flag, per-thread ring registry, record API.
//!
//! Cost model: when no session is active, [`begin`]/[`end`]/[`instant`]
//! are a single relaxed atomic load plus a predictable branch — cheap
//! enough to leave in every hot path of the runtime (see the
//! `trace_overhead` bench). When a session is active, a thread lazily
//! creates its ring on first record and registers it; the ring is
//! guarded by a mutex that only the owning thread touches until the
//! collector drains it at [`TraceSession::finish`].

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parade_net::sync::{Mutex, MutexGuard};
use parade_net::{thread_cpu_ns, VTime};

use crate::event::{EventKind, Identity, Phase, TraceEvent};
use crate::report::{aggregate, TraceReport};
use crate::ring::{Ring, ThreadTrace};

/// Is a trace session active? Relaxed load — the disabled fast path.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Generation of the active session (0 = none).
static ACTIVE_GEN: AtomicU64 = AtomicU64::new(0);
/// Monotonic generation source; never reused, so a thread-local ring from
/// a finished session can never be mistaken for a current one.
static NEXT_GEN: AtomicU64 = AtomicU64::new(1);
/// Ring capacity for the active session.
static CAPACITY: AtomicUsize = AtomicUsize::new(TraceConfig::DEFAULT_CAPACITY);

fn registry() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static R: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

/// Serializes sessions: at most one active per process.
static SESSION_LOCK: Mutex<()> = Mutex::new(());

struct ThreadTl {
    gen: u64,
    ring: Option<Arc<Mutex<Ring>>>,
    node: u32,
    name: Option<String>,
}

thread_local! {
    static TL: RefCell<ThreadTl> = const {
        RefCell::new(ThreadTl { gen: 0, ring: None, node: u32::MAX, name: None })
    };
}

/// Trace session parameters.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Per-thread ring capacity in events.
    pub capacity: usize,
}

impl TraceConfig {
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Default capacity, overridable via `PARADE_TRACE_CAP=<events>`.
    pub fn from_env() -> TraceConfig {
        let capacity = std::env::var("PARADE_TRACE_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(TraceConfig::DEFAULT_CAPACITY);
        TraceConfig { capacity }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: TraceConfig::DEFAULT_CAPACITY,
        }
    }
}

/// An active trace session. Dropping it without [`finish`](Self::finish)
/// stops recording and discards the collected events.
pub struct TraceSession {
    _guard: MutexGuard<'static, ()>,
}

/// Start a session, or `None` if one is already active in this process
/// (sessions are process-global; nesting would interleave two runs).
pub fn start(cfg: TraceConfig) -> Option<TraceSession> {
    let guard = SESSION_LOCK.try_lock()?;
    registry().lock().clear();
    CAPACITY.store(cfg.capacity, Ordering::Relaxed);
    let gen = NEXT_GEN.fetch_add(1, Ordering::Relaxed);
    ACTIVE_GEN.store(gen, Ordering::Release);
    ENABLED.store(true, Ordering::Release);
    Some(TraceSession { _guard: guard })
}

impl TraceSession {
    /// Stop recording and drain every registered ring.
    ///
    /// Call after all traced threads have been joined; events recorded
    /// concurrently with `finish` may land in either the drained data or
    /// nowhere, but never corrupt it.
    pub fn finish(self) -> TraceData {
        ENABLED.store(false, Ordering::SeqCst);
        ACTIVE_GEN.store(0, Ordering::SeqCst);
        let rings = std::mem::take(&mut *registry().lock());
        let mut threads: Vec<ThreadTrace> = rings
            .iter()
            .map(|r| r.lock().take())
            .filter(|t| !t.events.is_empty() || t.dropped > 0)
            .collect();
        threads.sort_by(|a, b| {
            (a.identity.node, &a.identity.name).cmp(&(b.identity.node, &b.identity.name))
        });
        TraceData { threads }
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        // Also runs at the end of `finish` (idempotent): recording must
        // stop even when a session is abandoned without draining.
        ENABLED.store(false, Ordering::SeqCst);
        ACTIVE_GEN.store(0, Ordering::SeqCst);
    }
}

/// Everything drained from one session.
#[derive(Debug, Clone)]
pub struct TraceData {
    /// Per-thread traces, sorted by (node, thread name).
    pub threads: Vec<ThreadTrace>,
}

impl TraceData {
    pub fn event_count(&self) -> u64 {
        self.threads.iter().map(|t| t.events.len() as u64).sum()
    }

    pub fn dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// Chrome `trace_event` JSON (see [`crate::chrome`]).
    pub fn chrome_json(&self) -> String {
        crate::chrome::chrome_json(self)
    }

    /// Per-construct virtual-time aggregation (see [`crate::report`]).
    pub fn report(&self) -> TraceReport {
        aggregate(&self.threads)
    }
}

/// Is recording currently enabled? One relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Tag the calling thread with its simulated node id and role name.
/// Cheap and idempotent; safe to call with tracing disabled.
pub fn set_identity(node: usize, name: &str) {
    let _ = TL.try_with(|tl| {
        let mut tl = tl.borrow_mut();
        tl.node = node as u32;
        tl.name = Some(name.to_string());
        if let Some(ring) = &tl.ring {
            if tl.gen == ACTIVE_GEN.load(Ordering::Acquire) {
                let id = Identity {
                    node: node as u32,
                    name: name.to_string(),
                };
                ring.lock().set_identity(id);
            }
        }
    });
}

/// Record a span begin at virtual time `vt`.
#[inline]
pub fn begin(kind: EventKind, vt: VTime) {
    if enabled() {
        record(kind, Phase::Begin, 0, vt);
    }
}

/// Record a span begin carrying an argument.
#[inline]
pub fn begin_arg(kind: EventKind, arg: u64, vt: VTime) {
    if enabled() {
        record(kind, Phase::Begin, arg, vt);
    }
}

/// Record a span end at virtual time `vt`.
#[inline]
pub fn end(kind: EventKind, vt: VTime) {
    if enabled() {
        record(kind, Phase::End, 0, vt);
    }
}

/// Record an instant event.
#[inline]
pub fn instant(kind: EventKind, arg: u64, vt: VTime) {
    if enabled() {
        record(kind, Phase::Instant, arg, vt);
    }
}

fn record(kind: EventKind, phase: Phase, arg: u64, vt: VTime) {
    let gen = ACTIVE_GEN.load(Ordering::Acquire);
    if gen == 0 {
        return;
    }
    let ev = TraceEvent {
        kind,
        phase,
        arg,
        vtime: vt,
        wall_ns: thread_cpu_ns(),
    };
    // try_with: a thread whose TLS is being torn down simply drops events.
    let _ = TL.try_with(|tl| {
        let mut tl = tl.borrow_mut();
        if tl.gen != gen || tl.ring.is_none() {
            let identity = Identity {
                node: tl.node,
                name: tl
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("{:?}", std::thread::current().id())),
            };
            let cap = CAPACITY.load(Ordering::Relaxed);
            let ring = Arc::new(Mutex::new(Ring::with_identity(cap, identity)));
            registry().lock().push(Arc::clone(&ring));
            tl.ring = Some(ring);
            tl.gen = gen;
        }
        tl.ring.as_ref().unwrap().lock().push(ev);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // Sessions are process-global, so serialize these tests: record-API
    // calls from one test must not land in another test's session.
    static TEST_GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_records_nothing() {
        let _g = TEST_GUARD.lock();
        let s = start(TraceConfig { capacity: 16 }).expect("session busy");
        let data = s.finish();
        // Nothing recorded between start and finish.
        assert_eq!(data.event_count(), 0);
        instant(EventKind::DsmDiff, 1, VTime(1)); // no session: must not panic
        assert!(!enabled());
    }

    #[test]
    fn records_across_threads_with_identity() {
        let _g = TEST_GUARD.lock();
        let s = start(TraceConfig { capacity: 64 }).expect("session busy");
        set_identity(0, "main");
        begin(EventKind::OmpBarrier, VTime(10));
        end(EventKind::OmpBarrier, VTime(30));
        let h = std::thread::spawn(|| {
            set_identity(1, "worker-1");
            instant(EventKind::DsmDiff, 128, VTime(5));
        });
        h.join().unwrap();
        let data = s.finish();
        assert_eq!(data.event_count(), 3);
        let nodes: Vec<u32> = data.threads.iter().map(|t| t.identity.node).collect();
        assert_eq!(nodes, vec![0, 1]);
        assert_eq!(data.threads[1].identity.name, "worker-1");
    }

    #[test]
    fn generations_do_not_leak_across_sessions() {
        let _g = TEST_GUARD.lock();
        {
            let s = start(TraceConfig { capacity: 16 }).expect("session busy");
            instant(EventKind::DsmTwin, 1, VTime(1));
            let d = s.finish();
            assert_eq!(d.event_count(), 1);
        }
        {
            let s = start(TraceConfig { capacity: 16 }).expect("session busy");
            instant(EventKind::DsmTwin, 2, VTime(2));
            let d = s.finish();
            // Only the second session's event; the ring was re-created.
            assert_eq!(d.event_count(), 1);
            assert_eq!(d.threads[0].events[0].arg, 2);
        }
    }
}
