//! In-process aggregation: per-construct virtual-time breakdown.
//!
//! Spans nest (an `omp.barrier` contains `dsm.barrier` contains
//! `dsm.fetch`), so naive per-kind sums would double-count. The
//! aggregator therefore attributes **exclusive** (self) time — a span's
//! duration minus the durations of spans nested inside it — alongside the
//! inclusive total. Summed per thread, exclusive times never exceed the
//! thread's final virtual clock, which keeps the per-node totals
//! comparable to the run's reported execution time.

use std::collections::BTreeMap;

use parade_net::VTime;

use crate::event::{EventKind, Phase};
use crate::ring::ThreadTrace;

/// Aggregated span statistics for one (node, kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRow {
    pub node: u32,
    pub kind: EventKind,
    /// Completed Begin/End pairs.
    pub count: u64,
    /// Exclusive virtual time (nested spans subtracted), ns.
    pub self_ns: u64,
    /// Inclusive virtual time, ns.
    pub total_ns: u64,
}

/// Aggregated instant statistics for one (node, kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstantRow {
    pub node: u32,
    pub kind: EventKind,
    pub count: u64,
    /// Sum of the kind-specific argument (bytes, chunk lengths, ...).
    pub arg_sum: u64,
}

/// The per-construct virtual-time breakdown for a whole run.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Span rows, sorted by (node, declaration order of kind).
    pub spans: Vec<SpanRow>,
    /// Instant rows, sorted the same way.
    pub instants: Vec<InstantRow>,
    /// Per node: the largest per-thread exclusive-span sum on that node
    /// ("busiest-thread attributed time"), ns. Each thread's exclusive
    /// sum is bounded by its final vclock, so these are comparable to
    /// the run's node times.
    pub node_attributed: Vec<(u32, u64)>,
    /// Threads that contributed events.
    pub threads: usize,
    /// Surviving events aggregated.
    pub events: u64,
    /// Events lost to ring wrap (oldest-first), exact.
    pub dropped: u64,
    /// Ends without a matching begin + begins left open (clock skew or a
    /// span truncated by ring wrap).
    pub unbalanced: u64,
}

impl TraceReport {
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Busiest-thread attributed time for `node`, ns.
    pub fn attributed_ns(&self, node: u32) -> u64 {
        self.node_attributed
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, ns)| *ns)
            .unwrap_or(0)
    }

    /// Human-readable breakdown table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {} threads, {} events, {} dropped, {} unbalanced\n",
            self.threads, self.events, self.dropped, self.unbalanced
        ));
        out.push_str(&format!(
            "{:<5} {:<16} {:>8} {:>14} {:>14}\n",
            "node", "construct", "count", "self-vtime", "total-vtime"
        ));
        for r in &self.spans {
            out.push_str(&format!(
                "{:<5} {:<16} {:>8} {:>14} {:>14}\n",
                r.node,
                r.kind.name(),
                r.count,
                format!("{}", VTime(r.self_ns)),
                format!("{}", VTime(r.total_ns)),
            ));
        }
        for r in &self.instants {
            out.push_str(&format!(
                "{:<5} {:<16} {:>8} {:>14} {:>14}\n",
                r.node,
                r.kind.name(),
                r.count,
                "-",
                format!("arg={}", r.arg_sum),
            ));
        }
        for (node, ns) in &self.node_attributed {
            out.push_str(&format!(
                "node {node}: busiest-thread attributed {}\n",
                VTime(*ns)
            ));
        }
        out
    }

    /// Hand-encoded JSON object (no serde).
    pub fn json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"threads\":{},\"events\":{},\"dropped\":{},\"unbalanced\":{},",
            self.threads, self.events, self.dropped, self.unbalanced
        ));
        s.push_str("\"spans\":[");
        for (i, r) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"node\":{},\"kind\":\"{}\",\"count\":{},\"self_ns\":{},\"total_ns\":{}}}",
                r.node,
                r.kind.name(),
                r.count,
                r.self_ns,
                r.total_ns
            ));
        }
        s.push_str("],\"instants\":[");
        for (i, r) in self.instants.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"node\":{},\"kind\":\"{}\",\"count\":{},\"arg_sum\":{}}}",
                r.node,
                r.kind.name(),
                r.count,
                r.arg_sum
            ));
        }
        s.push_str("],\"node_attributed\":[");
        for (i, (node, ns)) in self.node_attributed.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{{\"node\":{node},\"attributed_ns\":{ns}}}"));
        }
        s.push_str("]}");
        s
    }
}

/// Declaration-order index of a kind, for stable row sorting.
fn kind_order(kind: EventKind) -> usize {
    EventKind::ALL.iter().position(|k| *k == kind).unwrap_or(0)
}

/// Aggregate drained thread traces into a [`TraceReport`].
///
/// Pure function of its input — property tests drive it directly with
/// synthetic traces, no global session needed.
pub fn aggregate(threads: &[ThreadTrace]) -> TraceReport {
    let mut spans: BTreeMap<(u32, usize), SpanRow> = BTreeMap::new();
    let mut instants: BTreeMap<(u32, usize), InstantRow> = BTreeMap::new();
    let mut attributed: BTreeMap<u32, u64> = BTreeMap::new();
    let mut events = 0u64;
    let mut dropped = 0u64;
    let mut unbalanced = 0u64;

    // One open span on the per-thread stack. Exclusive time is computed by
    // *segment ownership*: at any instant the innermost open span owns the
    // clock, so each entry accumulates only the segments during which it
    // was on top. This stays correct when spans close out of order (task
    // spans interleaved with runtime spans): a close that crosses open
    // spans ends only its own ownership — every instant is still owned by
    // exactly one span, so per-thread exclusive sums never exceed the
    // thread's final virtual clock.
    struct Open {
        kind: EventKind,
        /// When the span began (inclusive totals measure begin..end).
        begin: VTime,
        /// Start of the segment this span currently owns (top of stack).
        seg_begin: VTime,
        /// Exclusive time accumulated over finished ownership segments.
        own_acc: u64,
    }

    for t in threads {
        events += t.events.len() as u64;
        dropped += t.dropped;
        let node = t.identity.node;
        let mut stack: Vec<Open> = Vec::new();
        let mut thread_excl = 0u64;
        for ev in &t.events {
            match ev.phase {
                Phase::Instant => {
                    let row = instants
                        .entry((node, kind_order(ev.kind)))
                        .or_insert(InstantRow {
                            node,
                            kind: ev.kind,
                            count: 0,
                            arg_sum: 0,
                        });
                    row.count += 1;
                    row.arg_sum += ev.arg;
                }
                Phase::Begin => {
                    if let Some(top) = stack.last_mut() {
                        top.own_acc += ev.vtime.saturating_sub(top.seg_begin).as_nanos();
                    }
                    stack.push(Open {
                        kind: ev.kind,
                        begin: ev.vtime,
                        seg_begin: ev.vtime,
                        own_acc: 0,
                    });
                }
                Phase::End => {
                    // Match the innermost open span of the same kind; an
                    // end with no open begin (truncated by ring wrap) is
                    // dropped and counted.
                    match stack.iter().rposition(|o| o.kind == ev.kind) {
                        Some(pos) => {
                            // The current top owned the segment up to now.
                            let top = stack.last_mut().expect("pos implies non-empty");
                            top.own_acc += ev.vtime.saturating_sub(top.seg_begin).as_nanos();
                            let closed = stack.remove(pos);
                            let dur = ev.vtime.saturating_sub(closed.begin).as_nanos();
                            let own = closed.own_acc;
                            let row =
                                spans
                                    .entry((node, kind_order(closed.kind)))
                                    .or_insert(SpanRow {
                                        node,
                                        kind: closed.kind,
                                        count: 0,
                                        self_ns: 0,
                                        total_ns: 0,
                                    });
                            row.count += 1;
                            row.self_ns += own;
                            row.total_ns += dur;
                            thread_excl += own;
                            // The new innermost span resumes ownership.
                            if let Some(top) = stack.last_mut() {
                                top.seg_begin = ev.vtime;
                            }
                        }
                        None => unbalanced += 1,
                    }
                }
            }
        }
        unbalanced += stack.len() as u64;
        let a = attributed.entry(node).or_insert(0);
        *a = (*a).max(thread_excl);
    }

    TraceReport {
        spans: spans.into_values().collect(),
        instants: instants.into_values().collect(),
        node_attributed: attributed.into_iter().collect(),
        threads: threads.len(),
        events,
        dropped,
        unbalanced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Identity, TraceEvent};

    fn t(node: u32, events: Vec<TraceEvent>) -> ThreadTrace {
        ThreadTrace {
            identity: Identity {
                node,
                name: format!("n{node}"),
            },
            events,
            dropped: 0,
        }
    }

    fn b(kind: EventKind, ns: u64) -> TraceEvent {
        TraceEvent {
            kind,
            phase: Phase::Begin,
            arg: 0,
            vtime: VTime(ns),
            wall_ns: ns,
        }
    }

    fn e(kind: EventKind, ns: u64) -> TraceEvent {
        TraceEvent {
            kind,
            phase: Phase::End,
            arg: 0,
            vtime: VTime(ns),
            wall_ns: ns,
        }
    }

    fn i(kind: EventKind, arg: u64, ns: u64) -> TraceEvent {
        TraceEvent {
            kind,
            phase: Phase::Instant,
            arg,
            vtime: VTime(ns),
            wall_ns: ns,
        }
    }

    #[test]
    fn exclusive_time_subtracts_children() {
        // omp.barrier [0,100] containing dsm.barrier [10,90] containing
        // dsm.fetch [20,50]: self times 20/50/30, all totals inclusive.
        let tr = t(
            0,
            vec![
                b(EventKind::OmpBarrier, 0),
                b(EventKind::DsmBarrier, 10),
                b(EventKind::DsmFetch, 20),
                e(EventKind::DsmFetch, 50),
                e(EventKind::DsmBarrier, 90),
                e(EventKind::OmpBarrier, 100),
            ],
        );
        let r = aggregate(&[tr]);
        assert_eq!(r.unbalanced, 0);
        let by_kind = |k: EventKind| r.spans.iter().find(|s| s.kind == k).unwrap();
        assert_eq!(by_kind(EventKind::DsmFetch).self_ns, 30);
        assert_eq!(by_kind(EventKind::DsmBarrier).self_ns, 50);
        assert_eq!(by_kind(EventKind::DsmBarrier).total_ns, 80);
        assert_eq!(by_kind(EventKind::OmpBarrier).self_ns, 20);
        assert_eq!(by_kind(EventKind::OmpBarrier).total_ns, 100);
        // Exclusive sum == outermost total, and that's the node attribution.
        assert_eq!(r.attributed_ns(0), 100);
    }

    #[test]
    fn mismatched_ends_are_counted_not_crashed() {
        let tr = t(
            1,
            vec![
                e(EventKind::OmpBarrier, 5), // end with no begin
                b(EventKind::DsmLock, 10),   // begin never ended
            ],
        );
        let r = aggregate(&[tr]);
        assert_eq!(r.unbalanced, 2);
        assert!(r.spans.is_empty());
    }

    #[test]
    fn out_of_order_closes_keep_exclusive_time_bounded() {
        // task.exec begins at 0; an omp.critical opens at 50 but the task
        // span ends first (100) and the critical closes later (150) —
        // crossed, not nested. Every instant must still be owned by
        // exactly one span: task.exec owns [0,50], omp.critical owns
        // [50,150], and the per-thread exclusive sum equals the final
        // clock instead of double-counting the overlap.
        let tr = t(
            0,
            vec![
                b(EventKind::TaskExec, 0),
                b(EventKind::OmpCritical, 50),
                e(EventKind::TaskExec, 100),
                e(EventKind::OmpCritical, 150),
            ],
        );
        let r = aggregate(&[tr]);
        assert_eq!(r.unbalanced, 0, "crossed spans must not be dropped");
        let by_kind = |k: EventKind| r.spans.iter().find(|s| s.kind == k).unwrap();
        assert_eq!(by_kind(EventKind::TaskExec).self_ns, 50);
        assert_eq!(by_kind(EventKind::TaskExec).total_ns, 100);
        assert_eq!(by_kind(EventKind::OmpCritical).self_ns, 100);
        assert_eq!(by_kind(EventKind::OmpCritical).total_ns, 100);
        assert_eq!(r.attributed_ns(0), 150); // == final vclock, no overlap
    }

    #[test]
    fn instants_aggregate_args() {
        let tr = t(
            0,
            vec![
                i(EventKind::DsmDiff, 100, 1),
                i(EventKind::DsmDiff, 28, 2),
                i(EventKind::OmpForChunk, 7, 3),
            ],
        );
        let r = aggregate(&[tr]);
        let diff = r
            .instants
            .iter()
            .find(|x| x.kind == EventKind::DsmDiff)
            .unwrap();
        assert_eq!(diff.count, 2);
        assert_eq!(diff.arg_sum, 128);
        assert_eq!(r.events, 3);
    }

    #[test]
    fn attribution_takes_busiest_thread_per_node() {
        let t1 = t(
            0,
            vec![b(EventKind::OmpBarrier, 0), e(EventKind::OmpBarrier, 50)],
        );
        let t2 = t(
            0,
            vec![b(EventKind::OmpBarrier, 0), e(EventKind::OmpBarrier, 80)],
        );
        let r = aggregate(&[t1, t2]);
        assert_eq!(r.attributed_ns(0), 80); // max, not 130
        let row = &r.spans[0];
        assert_eq!(row.count, 2); // but the row sums both threads
        assert_eq!(row.total_ns, 130);
    }

    #[test]
    fn report_json_is_wellformed() {
        let tr = t(
            0,
            vec![
                b(EventKind::MpiBcast, 0),
                e(EventKind::MpiBcast, 10),
                i(EventKind::CollRound, 1, 5),
            ],
        );
        let r = aggregate(&[tr]);
        crate::jsonck::validate_json(&r.json()).expect("report json must parse");
        assert!(r.json().contains("\"mpi.bcast\""));
    }
}
