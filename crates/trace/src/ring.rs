//! Fixed-capacity per-thread event rings.
//!
//! A ring never reallocates after construction: when full, `push`
//! overwrites the **oldest** event and bumps an exact drop counter, so the
//! collector can report precisely how much history was lost. Keeping the
//! newest events is the right bias for overhead attribution — the tail of
//! a run is where convergence stalls show up.

use crate::event::{Identity, TraceEvent};

/// One thread's event buffer.
#[derive(Debug)]
pub struct Ring {
    buf: Vec<TraceEvent>,
    /// Logical capacity (explicit: `Vec::with_capacity` may over-allocate).
    cap: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    len: usize,
    dropped: u64,
    identity: Identity,
}

impl Ring {
    /// `cap` is clamped to at least 2 so Begin/End pairs can coexist.
    pub fn new(cap: usize) -> Ring {
        Ring::with_identity(cap, Identity::untagged())
    }

    pub fn with_identity(cap: usize, identity: Identity) -> Ring {
        let cap = cap.max(2);
        Ring {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            len: 0,
            dropped: 0,
            identity,
        }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exact number of events overwritten since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn identity(&self) -> &Identity {
        &self.identity
    }

    pub fn set_identity(&mut self, identity: Identity) {
        self.identity = identity;
    }

    pub fn push(&mut self, ev: TraceEvent) {
        let cap = self.cap;
        if self.len < cap {
            self.buf.push(ev);
            self.len += 1;
        } else {
            // Full: overwrite the oldest slot and advance the head.
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % cap;
            self.dropped += 1;
        }
    }

    /// Surviving events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.len);
        out.extend_from_slice(&self.buf[self.head..self.len]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Drain into a [`ThreadTrace`], leaving the ring empty (drop counter
    /// and identity are carried out and reset).
    pub fn take(&mut self) -> ThreadTrace {
        let events = self.events();
        let dropped = self.dropped;
        self.buf.clear();
        self.head = 0;
        self.len = 0;
        self.dropped = 0;
        ThreadTrace {
            identity: self.identity.clone(),
            events,
            dropped,
        }
    }
}

/// The drained contents of one thread's ring.
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    pub identity: Identity,
    /// Surviving events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring wrap (always the oldest ones).
    pub dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Phase};
    use parade_net::VTime;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent {
            kind: EventKind::OmpForChunk,
            phase: Phase::Instant,
            arg: i,
            vtime: VTime(i),
            wall_ns: i,
        }
    }

    #[test]
    fn keeps_newest_and_counts_drops() {
        let mut r = Ring::new(4);
        for i in 0..10 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let args: Vec<u64> = r.events().iter().map(|e| e.arg).collect();
        assert_eq!(args, vec![6, 7, 8, 9]);
    }

    #[test]
    fn take_resets() {
        let mut r = Ring::new(2);
        r.push(ev(0));
        r.push(ev(1));
        r.push(ev(2));
        let t = r.take();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.dropped, 1);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn tiny_capacity_is_clamped() {
        let r = Ring::new(0);
        assert_eq!(r.capacity(), 2);
    }
}
