//! A minimal JSON well-formedness checker (RFC 8259 syntax only).
//!
//! The hermetic workspace has no serde, but the golden tests and the CI
//! smoke run must prove that emitted Chrome traces parse. This is a
//! ~150-line recursive-descent validator: it accepts exactly one JSON
//! value (with surrounding whitespace) and rejects everything else with
//! a byte offset. It validates syntax, not any schema.

/// Validate that `s` is one well-formed JSON document.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser {
        b,
        pos: 0,
        depth: 0,
    };
    p.ws();
    p.value()?;
    p.ws();
    if p.pos != b.len() {
        return Err(p.err("trailing content after JSON value"));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 256;

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {}", self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn lit(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        let r = match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.lit("true"),
            Some(b'f') => self.lit("false"),
            Some(b'n') => self.lit("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        };
        self.depth -= 1;
        r
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            self.value()?;
            self.ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(c) if c.is_ascii_hexdigit() => {}
                                _ => return Err(self.err("bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {}
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0, or nonzero digit followed by digits.
        match self.bump() {
            Some(b'0') => {}
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("bad number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut n = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                n += 1;
            }
            if n == 0 {
                return Err(self.err("digits required after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut n = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                n += 1;
            }
            if n == 0 {
                return Err(self.err("digits required in exponent"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e+10",
            r#"{"a":[1,2,{"b":"c\n\"d\""}],"e":null}"#,
            "  [ 1 , 2 ]  ",
            r#""é""#,
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "[1] trailing",
            "nul",
            "{\"a\" 1}",
            "\"bad \\x escape\"",
        ] {
            assert!(validate_json(bad).is_err(), "should reject: {bad}");
        }
    }
}
