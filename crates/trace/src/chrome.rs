//! Chrome `trace_event` JSON emission (hand-encoded, no serde).
//!
//! The output is the "JSON object format" understood by `chrome://tracing`
//! and Perfetto: a `traceEvents` array of `B`/`E` duration events and `i`
//! instant events, plus `M` metadata records naming each process
//! (simulated node) and thread. Timestamps are the events' **virtual**
//! times in microseconds, so the timeline shows simulated-cluster time,
//! not host wall time.

use crate::event::{Identity, Phase};
use crate::session::TraceData;

/// Escape a string for embedding in a JSON literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn pid(id: &Identity) -> u32 {
    // Perfetto groups tracks by pid; use the simulated node id, with the
    // untagged sentinel mapped to a high-but-valid process id.
    if id.node == Identity::UNTAGGED_NODE {
        999
    } else {
        id.node
    }
}

/// Encode drained trace data as a Chrome `trace_event` JSON document.
pub fn chrome_json(data: &TraceData) -> String {
    let mut s = String::new();
    s.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |s: &mut String, line: String| {
        if !std::mem::take(&mut first) {
            s.push_str(",\n");
        }
        s.push_str(&line);
    };

    // Metadata: one process_name per node, one thread_name per ring.
    let mut named_nodes = std::collections::BTreeSet::new();
    for (tid, t) in data.threads.iter().enumerate() {
        let p = pid(&t.identity);
        if named_nodes.insert(p) {
            let pname = if t.identity.node == Identity::UNTAGGED_NODE {
                "untagged".to_string()
            } else {
                format!("node{}", t.identity.node)
            };
            push(
                &mut s,
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{p},\"tid\":0,\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    escape(&pname)
                ),
            );
        }
        push(
            &mut s,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{p},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(&t.identity.name)
            ),
        );
    }

    for (tid, t) in data.threads.iter().enumerate() {
        let p = pid(&t.identity);
        for ev in &t.events {
            let ts = ev.vtime.as_micros_f64();
            let name = ev.kind.name();
            let cat = ev.kind.category();
            let line = match ev.phase {
                Phase::Begin => format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"B\",\"ts\":{ts:.3},\
                     \"pid\":{p},\"tid\":{tid},\"args\":{{\"arg\":{}}}}}",
                    ev.arg
                ),
                Phase::End => format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"E\",\"ts\":{ts:.3},\
                     \"pid\":{p},\"tid\":{tid}}}"
                ),
                Phase::Instant => format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts:.3},\"pid\":{p},\"tid\":{tid},\
                     \"args\":{{\"arg\":{},\"wall_ns\":{}}}}}",
                    ev.arg, ev.wall_ns
                ),
            };
            push(&mut s, line);
        }
        if t.dropped > 0 {
            // Surface ring wrap in the viewer itself, not just the report.
            push(
                &mut s,
                format!(
                    "{{\"name\":\"ring_dropped\",\"cat\":\"trace\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":0.0,\"pid\":{p},\"tid\":{tid},\
                     \"args\":{{\"dropped\":{}}}}}",
                    t.dropped
                ),
            );
        }
    }
    s.push_str("\n]}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, TraceEvent};
    use crate::jsonck::validate_json;
    use crate::ring::ThreadTrace;
    use parade_net::VTime;

    #[test]
    fn emits_valid_json_with_metadata() {
        let threads = vec![ThreadTrace {
            identity: Identity {
                node: 0,
                name: "worker \"q\"\n".to_string(), // hostile name
            },
            events: vec![
                TraceEvent {
                    kind: EventKind::OmpBarrier,
                    phase: Phase::Begin,
                    arg: 0,
                    vtime: VTime(1_500),
                    wall_ns: 10,
                },
                TraceEvent {
                    kind: EventKind::OmpBarrier,
                    phase: Phase::End,
                    arg: 0,
                    vtime: VTime(2_500),
                    wall_ns: 20,
                },
                TraceEvent {
                    kind: EventKind::DsmDiff,
                    phase: Phase::Instant,
                    arg: 4096,
                    vtime: VTime(2_000),
                    wall_ns: 15,
                },
            ],
            dropped: 3,
        }];
        let json = chrome_json(&TraceData { threads });
        validate_json(&json).expect("chrome json must parse");
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ring_dropped\""));
        assert!(json.contains("\\\"q\\\""));
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let json = chrome_json(&TraceData { threads: vec![] });
        validate_json(&json).expect("empty chrome json must parse");
        assert!(json.contains("\"traceEvents\""));
    }
}
