//! `parade-trace` — virtual-time event tracing & overhead attribution.
//!
//! The ParADE runtime is evaluated the way the paper evaluates it (§6):
//! by attributing *virtual time* to constructs — how much of a run went
//! to DSM faults, diff shipping, barrier rounds, collective steps,
//! comm-thread queueing. End-of-run counters can't answer "when" or
//! "under which construct"; this crate records typed events into
//! per-thread fixed-capacity ring buffers and drains them at run end
//! into:
//!
//! * a Chrome `trace_event` JSON file (hand-encoded — the workspace is
//!   hermetic) loadable in `chrome://tracing` or Perfetto, and
//! * an in-process [`TraceReport`]: per-construct, per-node virtual-time
//!   breakdown with exclusive (nesting-corrected) times and exact drop
//!   accounting when a ring wraps.
//!
//! # Usage
//!
//! ```
//! use parade_net::VTime;
//! use parade_trace as trace;
//!
//! if let Some(session) = trace::start(trace::TraceConfig::default()) {
//!     trace::set_identity(0, "main");
//!     trace::begin(trace::EventKind::OmpBarrier, VTime(100));
//!     trace::end(trace::EventKind::OmpBarrier, VTime(400));
//!     let data = session.finish();
//!     assert_eq!(data.event_count(), 2);
//!     let json = data.chrome_json();
//!     trace::validate_json(&json).unwrap();
//!     assert_eq!(data.report().attributed_ns(0), 300);
//! }
//! ```
//!
//! Recording with no active session costs a single branch on a relaxed
//! atomic load — instrumentation stays compiled into every hot path.
//! The runtime starts a session automatically when `PARADE_TRACE=<path>`
//! is set (see `parade-core`), writing the Chrome JSON to `<path>`.

mod chrome;
mod event;
mod jsonck;
mod report;
mod ring;
mod session;

pub use chrome::chrome_json;
pub use event::{EventKind, Identity, Phase, TraceEvent};
pub use jsonck::validate_json;
pub use report::{aggregate, InstantRow, SpanRow, TraceReport};
pub use ring::{Ring, ThreadTrace};
pub use session::{
    begin, begin_arg, enabled, end, instant, set_identity, start, TraceConfig, TraceData,
    TraceSession,
};
