//! The typed event taxonomy.
//!
//! Every layer of the runtime emits events from one shared enum so the
//! collector can attribute virtual time per construct without string
//! matching. Span kinds carry a Begin/End pair; instant kinds are single
//! points with an argument (page number, byte count, round index, ...).

use parade_net::VTime;

/// What happened. Grouped by the runtime layer that emits it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EventKind {
    // --- DSM protocol (application-thread side) ---
    /// Read fault taken (instant; arg = page).
    DsmReadFault,
    /// Write fault taken (instant; arg = page).
    DsmWriteFault,
    /// Twin created on first write to a non-home page (instant; arg = page).
    DsmTwin,
    /// Remote page fetch round-trip (span; arg = page).
    DsmFetch,
    /// Diff shipped to a home (instant; arg = payload bytes).
    DsmDiff,
    /// Per-home diff batch shipped at a release (instant; arg = pages).
    DsmDiffBatch,
    /// Coalesced contiguous-page fetch round-trip (instant; arg = pages).
    DsmRangeFetch,
    /// Page invalidated by a write notice (instant; arg = page).
    DsmInvalidate,
    /// Home migration applied locally (instant; arg = page).
    DsmMigrate,
    /// Full page pushed to a migrated home (instant; arg = page).
    DsmPush,
    /// Dirty-page flush: twin/diff/ship for all dirty pages (span).
    DsmFlush,
    /// SDSM global barrier: arrive + release + write-notice apply (span).
    DsmBarrier,
    /// Distributed lock acquire round-trip(s) (span; arg = lock id).
    DsmLock,
    /// Diff batch merged under one page-store shard (instant; arg = shard).
    DsmShard,
    /// One busy-wait poll round for a Polling lock (instant; arg = lock id).
    DsmLockPoll,
    // --- MPI-like message passing ---
    /// Dissemination barrier (span).
    MpiBarrier,
    /// Binomial-tree broadcast (span; arg = bytes).
    MpiBcast,
    /// Binomial-tree reduction to root (span).
    MpiReduce,
    /// Reduce + broadcast allreduce (span).
    MpiAllreduce,
    /// Gather to root (span; arg = bytes contributed).
    MpiGather,
    /// One send/recv step of a collective (instant; arg = round/mask).
    CollRound,
    // --- OpenMP-level constructs (core runtime) ---
    /// Team barrier, hybrid or SDSM-only (span).
    OmpBarrier,
    /// Critical section incl. distributed lock when cross-node (span).
    OmpCritical,
    /// Reduction, hierarchical or lock-based (span).
    OmpReduction,
    /// Single construct incl. result propagation (span).
    OmpSingle,
    /// One dynamic-loop chunk grab (instant; arg = chunk length).
    OmpForChunk,
    // --- Cluster plumbing ---
    /// Comm thread servicing one request (span; arg = queueing delay ns).
    CommService,
    // --- Fabric reliability (chaos fault injection) ---
    /// One retransmission on the reliable channel (instant; arg = dst node).
    NetRetransmit,
    // --- Task scheduler (parade-tasks) ---
    /// Task created and enqueued or shipped (instant; arg = task id).
    TaskSpawn,
    /// Tasks obtained from a steal reply (instant; arg = tasks stolen).
    TaskSteal,
    /// One task body executing, release included (span; arg = task id).
    TaskExec,
    // --- Static analyzer (paradec check) ---
    /// One MIR pipeline stage: lowering or a dataflow pass (span; arg =
    /// stage id, see `parade-mir`'s `span_arg`).
    CheckAnalyze,
}

impl EventKind {
    /// All kinds, in declaration order (stable for reports).
    pub const ALL: [EventKind; 32] = [
        EventKind::DsmReadFault,
        EventKind::DsmWriteFault,
        EventKind::DsmTwin,
        EventKind::DsmFetch,
        EventKind::DsmDiff,
        EventKind::DsmDiffBatch,
        EventKind::DsmRangeFetch,
        EventKind::DsmInvalidate,
        EventKind::DsmMigrate,
        EventKind::DsmPush,
        EventKind::DsmFlush,
        EventKind::DsmBarrier,
        EventKind::DsmLock,
        EventKind::DsmShard,
        EventKind::DsmLockPoll,
        EventKind::MpiBarrier,
        EventKind::MpiBcast,
        EventKind::MpiReduce,
        EventKind::MpiAllreduce,
        EventKind::MpiGather,
        EventKind::CollRound,
        EventKind::OmpBarrier,
        EventKind::OmpCritical,
        EventKind::OmpReduction,
        EventKind::OmpSingle,
        EventKind::OmpForChunk,
        EventKind::CommService,
        EventKind::NetRetransmit,
        EventKind::TaskSpawn,
        EventKind::TaskSteal,
        EventKind::TaskExec,
        EventKind::CheckAnalyze,
    ];

    /// Stable dotted name, used in Chrome traces and reports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::DsmReadFault => "dsm.read_fault",
            EventKind::DsmWriteFault => "dsm.write_fault",
            EventKind::DsmTwin => "dsm.twin",
            EventKind::DsmFetch => "dsm.fetch",
            EventKind::DsmDiff => "dsm.diff",
            EventKind::DsmDiffBatch => "dsm.diff_batch",
            EventKind::DsmRangeFetch => "dsm.range_fetch",
            EventKind::DsmInvalidate => "dsm.invalidate",
            EventKind::DsmMigrate => "dsm.migrate",
            EventKind::DsmPush => "dsm.push",
            EventKind::DsmFlush => "dsm.flush",
            EventKind::DsmBarrier => "dsm.barrier",
            EventKind::DsmLock => "dsm.lock",
            EventKind::DsmShard => "dsm.shard",
            EventKind::DsmLockPoll => "dsm.lock_poll",
            EventKind::MpiBarrier => "mpi.barrier",
            EventKind::MpiBcast => "mpi.bcast",
            EventKind::MpiReduce => "mpi.reduce",
            EventKind::MpiAllreduce => "mpi.allreduce",
            EventKind::MpiGather => "mpi.gather",
            EventKind::CollRound => "mpi.coll_round",
            EventKind::OmpBarrier => "omp.barrier",
            EventKind::OmpCritical => "omp.critical",
            EventKind::OmpReduction => "omp.reduction",
            EventKind::OmpSingle => "omp.single",
            EventKind::OmpForChunk => "omp.for_chunk",
            EventKind::CommService => "comm.service",
            EventKind::NetRetransmit => "net.retransmit",
            EventKind::TaskSpawn => "task.spawn",
            EventKind::TaskSteal => "task.steal",
            EventKind::TaskExec => "task.exec",
            EventKind::CheckAnalyze => "check.analyze",
        }
    }

    /// Layer category ("dsm", "mpi", "omp", "comm") for Chrome `cat`.
    pub fn category(self) -> &'static str {
        match self {
            EventKind::DsmReadFault
            | EventKind::DsmWriteFault
            | EventKind::DsmTwin
            | EventKind::DsmFetch
            | EventKind::DsmDiff
            | EventKind::DsmDiffBatch
            | EventKind::DsmRangeFetch
            | EventKind::DsmInvalidate
            | EventKind::DsmMigrate
            | EventKind::DsmPush
            | EventKind::DsmFlush
            | EventKind::DsmBarrier
            | EventKind::DsmLock
            | EventKind::DsmShard
            | EventKind::DsmLockPoll => "dsm",
            EventKind::MpiBarrier
            | EventKind::MpiBcast
            | EventKind::MpiReduce
            | EventKind::MpiAllreduce
            | EventKind::MpiGather
            | EventKind::CollRound => "mpi",
            EventKind::OmpBarrier
            | EventKind::OmpCritical
            | EventKind::OmpReduction
            | EventKind::OmpSingle
            | EventKind::OmpForChunk => "omp",
            EventKind::CommService => "comm",
            EventKind::NetRetransmit => "net",
            EventKind::TaskSpawn | EventKind::TaskSteal | EventKind::TaskExec => "task",
            EventKind::CheckAnalyze => "check",
        }
    }

    /// True for kinds recorded as Begin/End pairs.
    pub fn is_span(self) -> bool {
        matches!(
            self,
            EventKind::DsmFetch
                | EventKind::DsmFlush
                | EventKind::DsmBarrier
                | EventKind::DsmLock
                | EventKind::MpiBarrier
                | EventKind::MpiBcast
                | EventKind::MpiReduce
                | EventKind::MpiAllreduce
                | EventKind::MpiGather
                | EventKind::OmpBarrier
                | EventKind::OmpCritical
                | EventKind::OmpReduction
                | EventKind::OmpSingle
                | EventKind::CommService
                | EventKind::TaskExec
                | EventKind::CheckAnalyze
        )
    }
}

/// Span begin / span end / instant marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    Begin,
    End,
    Instant,
}

/// One recorded event. 32 bytes; rings store these by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    pub kind: EventKind,
    pub phase: Phase,
    /// Kind-specific argument (page, bytes, round, queue delay, ...).
    pub arg: u64,
    /// Virtual timestamp from the emitting thread's `VClock`.
    pub vtime: VTime,
    /// Monotonic wall timestamp (`thread_cpu_ns`), for debugging skew.
    pub wall_ns: u64,
}

/// Who recorded a ring: simulated node id + role label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Identity {
    /// Simulated node id; `u32::MAX` when the thread never tagged itself.
    pub node: u32,
    pub name: String,
}

impl Identity {
    pub const UNTAGGED_NODE: u32 = u32::MAX;

    pub fn untagged() -> Identity {
        Identity {
            node: Identity::UNTAGGED_NODE,
            name: "untagged".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_is_consistent() {
        assert_eq!(EventKind::ALL.len(), 32);
        let mut names = std::collections::HashSet::new();
        for k in EventKind::ALL {
            assert!(names.insert(k.name()), "duplicate name {}", k.name());
            assert!(k.name().starts_with(k.category()));
            assert!(["dsm", "mpi", "omp", "comm", "net", "task", "check"].contains(&k.category()));
        }
    }

    #[test]
    fn span_vs_instant_split() {
        let spans = EventKind::ALL.iter().filter(|k| k.is_span()).count();
        assert_eq!(spans, 16);
        assert!(EventKind::TaskExec.is_span());
        assert!(!EventKind::TaskSpawn.is_span());
        assert!(EventKind::OmpBarrier.is_span());
        assert!(!EventKind::DsmDiff.is_span());
        assert!(!EventKind::DsmDiffBatch.is_span());
        assert!(!EventKind::DsmRangeFetch.is_span());
        assert!(!EventKind::NetRetransmit.is_span());
    }
}
