//! Structured diagnostics: stable lint ids, severity, source spans.

use std::fmt;

use parade_translator::Span;

/// Diagnostic severity. `Error` diagnostics make `paradec check` exit
/// non-zero; `Warning`s are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable lint identifiers. Codes are append-only: new lints get new
/// numbers, retired lints leave holes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LintId {
    /// PC001 — write to a shared variable inside a parallel region with no
    /// synchronization and no iteration-disjoint subscript.
    SharedWriteRace,
    /// PC002 — loop-carried dependence under a work-sharing directive
    /// (`a[i±k]` read against an `a[i]` write).
    LoopCarriedDependence,
    /// PC003 — reduction variable read or written outside its combining
    /// update, or updated with a mismatched operator.
    ReductionMisuse,
    /// PC004 — barrier placed where threads can diverge: inside
    /// `single`/`master`/`critical`, or under a thread-dependent condition.
    BarrierPlacement,
    /// PC005 — `nowait` loop followed by an access to data it wrote,
    /// before any joining barrier.
    NowaitUnsyncRead,
    /// PC006 — clause-private variable read before any write (likely
    /// should be `firstprivate`).
    PrivateUninitRead,
    /// PC007 — directive structure: bad nesting, orphaned constructs,
    /// non-canonical work-shared loops, malformed atomic bodies, unknown
    /// clause variables.
    DirectiveStructure,
    /// PC008 — shared write inside a `task` body with no `depend` edge on
    /// the written variable and no enclosing synchronization: tasks run
    /// concurrently under the work-stealing scheduler, so unordered writes
    /// race.
    TaskSharedWrite,
    /// PC009 — barrier (or implicitly-joining work-sharing construct)
    /// placed in a CFG-divergent block: the dataflow divergence analysis
    /// proves threads of the team can disagree on reaching it, even where
    /// the lexical PC004 rules stay silent (e.g. after a thread-dependent
    /// `break`). Flow-sensitive; only the MIR analyzer emits it.
    BarrierDivergence,
    /// PC010 — `depend` clauses of the tasks in a region form a cycle: the
    /// scheduler can never release any task on it, deadlocking the
    /// taskwait. Flow-sensitive; only the MIR analyzer emits it.
    TaskDependCycle,
}

impl LintId {
    pub const ALL: [LintId; 10] = [
        LintId::SharedWriteRace,
        LintId::LoopCarriedDependence,
        LintId::ReductionMisuse,
        LintId::BarrierPlacement,
        LintId::NowaitUnsyncRead,
        LintId::PrivateUninitRead,
        LintId::DirectiveStructure,
        LintId::TaskSharedWrite,
        LintId::BarrierDivergence,
        LintId::TaskDependCycle,
    ];

    /// The stable code, e.g. `PC001`.
    pub fn code(self) -> &'static str {
        match self {
            LintId::SharedWriteRace => "PC001",
            LintId::LoopCarriedDependence => "PC002",
            LintId::ReductionMisuse => "PC003",
            LintId::BarrierPlacement => "PC004",
            LintId::NowaitUnsyncRead => "PC005",
            LintId::PrivateUninitRead => "PC006",
            LintId::DirectiveStructure => "PC007",
            LintId::TaskSharedWrite => "PC008",
            LintId::BarrierDivergence => "PC009",
            LintId::TaskDependCycle => "PC010",
        }
    }

    /// Human-readable lint name (kebab-case, for docs and `--explain`).
    pub fn name(self) -> &'static str {
        match self {
            LintId::SharedWriteRace => "shared-write-race",
            LintId::LoopCarriedDependence => "loop-carried-dependence",
            LintId::ReductionMisuse => "reduction-misuse",
            LintId::BarrierPlacement => "barrier-placement",
            LintId::NowaitUnsyncRead => "nowait-unsynchronized-access",
            LintId::PrivateUninitRead => "private-read-before-write",
            LintId::DirectiveStructure => "directive-structure",
            LintId::TaskSharedWrite => "task-unordered-shared-write",
            LintId::BarrierDivergence => "barrier-divergence-deadlock",
            LintId::TaskDependCycle => "task-dependency-cycle",
        }
    }

    /// Default severity of the lint.
    pub fn severity(self) -> Severity {
        match self {
            LintId::PrivateUninitRead => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// One diagnostic produced by the analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct Diag {
    pub lint: LintId,
    pub severity: Severity,
    pub span: Span,
    pub message: String,
}

impl Diag {
    pub fn new(lint: LintId, span: Span, message: impl Into<String>) -> Diag {
        Diag {
            lint,
            severity: lint.severity(),
            span,
            message: message.into(),
        }
    }

    /// Render as `file:line:col: severity[PCnnn]: message`.
    pub fn render(&self, file: &str) -> String {
        format!(
            "{file}:{}: {}[{}]: {}",
            self.span,
            self.severity,
            self.lint.code(),
            self.message
        )
    }

    /// Render as one JSON object (machine-readable `paradec check --json`).
    pub fn render_json(&self, file: &str) -> String {
        format!(
            r#"{{"file":{},"lint":"{}","name":"{}","severity":"{}","line":{},"col":{},"message":{}}}"#,
            json_str(file),
            self.lint.code(),
            self.lint.name(),
            self.severity,
            self.span.line,
            self.span.col,
            json_str(&self.message)
        )
    }
}

/// Minimal JSON string escaping (the diagnostics only ever carry source
/// identifiers and fixed text, but stay correct on anything).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Canonical diagnostic order: (line, col, lint id, message), then dedup.
/// Both analyzer backends sort with this so their outputs are comparable
/// byte-for-byte.
pub fn sort_diags(diags: &mut Vec<Diag>) {
    diags.sort_by(|a, b| {
        (a.span.line, a.span.col, a.lint, &a.message).cmp(&(
            b.span.line,
            b.span.col,
            b.lint,
            &b.message,
        ))
    });
    diags.dedup();
}

/// True if any diagnostic is `Error` severity (the check-gate predicate).
pub fn has_errors(diags: &[Diag]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let codes: Vec<&str> = LintId::ALL.iter().map(|l| l.code()).collect();
        assert_eq!(
            codes,
            vec![
                "PC001", "PC002", "PC003", "PC004", "PC005", "PC006", "PC007", "PC008", "PC009",
                "PC010"
            ]
        );
    }

    #[test]
    fn json_rendering_escapes_and_is_stable() {
        let d = Diag::new(
            LintId::BarrierDivergence,
            Span::new(7, 13),
            "threads \"may\" diverge",
        );
        assert_eq!(
            d.render_json("dir/prog.c"),
            r#"{"file":"dir/prog.c","lint":"PC009","name":"barrier-divergence-deadlock","severity":"error","line":7,"col":13,"message":"threads \"may\" diverge"}"#
        );
    }

    #[test]
    fn render_includes_span_and_code() {
        let d = Diag::new(
            LintId::SharedWriteRace,
            Span::new(12, 5),
            "write to shared `x`",
        );
        assert_eq!(
            d.render("prog.c"),
            "prog.c:12:5: error[PC001]: write to shared `x`"
        );
    }

    #[test]
    fn only_private_uninit_is_warning() {
        for l in LintId::ALL {
            let expect = if l == LintId::PrivateUninitRead {
                Severity::Warning
            } else {
                Severity::Error
            };
            assert_eq!(l.severity(), expect, "{}", l.code());
        }
    }
}
