//! `paradec` — the ParADE OpenMP translator CLI.
//!
//! ```text
//! paradec check <file.c> [--json] [--ast-check] [--trace FILE]
//! paradec translate <file.c> [--mode parade|sdsm] [--threshold N] [--no-check]
//! paradec run <file.c> [--nodes N] [--threads T] [--mode parade|sdsm]
//!                      [--trace FILE] [--oracle] [--no-check]
//! ```
//!
//! `check` runs the static analyzer and prints its diagnostics; any
//! `error[PCnnn]` makes it exit non-zero. The default analyzer lowers to
//! MIR and runs the dataflow-based lints (PC001–PC010); `--ast-check`
//! selects the lexical AST analyzer (PC001–PC008) instead, and `--json`
//! prints one JSON object per diagnostic on stdout — the JSON carries no
//! backend-identifying field, so the two analyzers' outputs are directly
//! diffable. `translate` prints the translated C source (Figures 2/3
//! style) and `run` interprets the program on a simulated cluster — both
//! run the analyzer first and refuse programs with errors unless
//! `--no-check` is given. `run --oracle` additionally enables the
//! happens-before race oracle inside the interpreter and reports any data
//! races the execution actually exhibited.

use parade_check::{check_program, check_program_ast, has_errors, Severity};
use parade_core::{Cluster, NetProfile, ProtocolMode, TimeSource};
use parade_translator::emit::{translate, EmitMode};
use parade_translator::interp::Interp;
use parade_translator::parser::parse;

fn usage() -> ! {
    eprintln!(
        "usage:\n  paradec check <file.c> [--json] [--ast-check] [--trace FILE]\n  \
         paradec translate <file.c> [--mode parade|sdsm] [--threshold N] [--no-check]\n  \
         paradec run <file.c> [--nodes N] [--threads T] [--mode parade|sdsm] [--trace FILE] [--oracle] [--no-check]\n\
  --json:       print one JSON object per diagnostic on stdout\n\
  --ast-check:  use the lexical AST analyzer (PC001-PC008) instead of the\n\
                MIR dataflow analyzer (PC001-PC010)\n\
  --trace FILE: record the run (or `check` analysis) and write a Chrome\n\
                trace_event file (open in chrome://tracing or Perfetto);\n\
                for `run`, same as PARADE_TRACE=FILE\n\
  --oracle:     detect data races at runtime (vector-clock happens-before)\n\
  --no-check:   skip the static analyzer gate before translate/run"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let cmd = args[0].as_str();
    let file = &args[1];
    let mut mode = "parade".to_string();
    let mut nodes = 2usize;
    let mut threads = 2usize;
    let mut threshold = parade_translator::analysis::DEFAULT_SMALL_THRESHOLD;
    let mut trace_path: Option<String> = None;
    let mut oracle = false;
    let mut no_check = false;
    let mut json = false;
    let mut ast_check = false;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--mode" => {
                i += 1;
                mode = args.get(i).unwrap_or_else(|| usage()).clone();
            }
            "--nodes" => {
                i += 1;
                nodes = args
                    .get(i)
                    .unwrap_or_else(|| usage())
                    .parse()
                    .expect("bad --nodes");
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .unwrap_or_else(|| usage())
                    .parse()
                    .expect("bad --threads");
            }
            "--trace" => {
                i += 1;
                trace_path = Some(args.get(i).unwrap_or_else(|| usage()).clone());
            }
            "--threshold" => {
                i += 1;
                threshold = args
                    .get(i)
                    .unwrap_or_else(|| usage())
                    .parse()
                    .expect("bad --threshold");
            }
            "--oracle" => oracle = true,
            "--no-check" => no_check = true,
            "--json" => json = true,
            "--ast-check" => ast_check = true,
            _ => usage(),
        }
        i += 1;
    }

    let src = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("paradec: cannot read {file}: {e}");
        std::process::exit(1);
    });
    let prog = match parse(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("paradec: {file}: {e}");
            std::process::exit(1);
        }
    };

    // The analyzer gates everything; `--no-check` demotes a failing gate to
    // a warning so known-racy programs can still be run (e.g. to watch the
    // oracle catch them).
    if cmd == "check" || !no_check {
        // `check --trace` records the analyzer's own `check.analyze` spans
        // (MIR lowering plus each dataflow pass) in its own session; `run`
        // instead hands the path to the runtime via PARADE_TRACE above.
        let session = if cmd == "check" && trace_path.is_some() {
            parade_trace::start(parade_trace::TraceConfig::from_env())
        } else {
            None
        };
        let diags = if ast_check {
            check_program_ast(&prog)
        } else {
            check_program(&prog)
        };
        if let Some(session) = session {
            let path = trace_path.as_ref().expect("trace path");
            let data = session.finish();
            if let Err(e) = std::fs::write(path, data.chrome_json()) {
                eprintln!("paradec: cannot write trace {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("[paradec] trace written to {path}");
        }
        if json {
            for d in &diags {
                println!("{}", d.render_json(file));
            }
        } else {
            for d in &diags {
                eprintln!("{}", d.render(file));
            }
        }
        let errors = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let warnings = diags.len() - errors;
        if cmd == "check" {
            if diags.is_empty() {
                if !json {
                    println!(
                        "{file}: ok ({} top-level items, {} includes)",
                        prog.items.len(),
                        prog.includes.len()
                    );
                }
            } else {
                eprintln!("{file}: {errors} error(s), {warnings} warning(s)");
            }
            std::process::exit(if has_errors(&diags) { 1 } else { 0 });
        }
        if has_errors(&diags) {
            eprintln!(
                "paradec: {file}: {errors} error(s) from `paradec check`; \
                 pass --no-check to {cmd} anyway"
            );
            std::process::exit(1);
        }
    }

    match cmd {
        "translate" => {
            let emit_mode = match mode.as_str() {
                "sdsm" => EmitMode::Sdsm,
                _ => EmitMode::Parade,
            };
            match translate(&prog, emit_mode, threshold) {
                Ok(out) => print!("{out}"),
                Err(e) => {
                    eprintln!("paradec: {file}: {e}");
                    std::process::exit(1);
                }
            }
        }
        "run" => {
            if let Some(path) = &trace_path {
                // The runtime reads this when the cluster launches.
                std::env::set_var("PARADE_TRACE", path);
            }
            let protocol = match mode.as_str() {
                "sdsm" => ProtocolMode::SdsmOnly,
                _ => ProtocolMode::Parade,
            };
            let cluster = Cluster::builder()
                .nodes(nodes)
                .threads_per_node(threads)
                .protocol(protocol)
                .net(NetProfile::clan_via())
                .time(TimeSource::ThreadCpu { scale: 60.0 })
                .build()
                .expect("cluster config");
            let mut interp = Interp::new(prog).with_threshold(threshold);
            if oracle {
                interp = interp.with_oracle();
            }
            match interp.run(&cluster) {
                Ok(out) => {
                    print!("{}", out.stdout);
                    if let Some(path) = &trace_path {
                        eprintln!("[paradec] trace written to {path}");
                    }
                    for r in &out.races {
                        eprintln!("[paradec] race: {r}");
                    }
                    if oracle && out.races.is_empty() {
                        eprintln!("[paradec] oracle: no data races observed");
                    }
                    eprintln!("[paradec] exit code {}", out.exit);
                    let code = if out.exit != 0 {
                        out.exit as i32
                    } else if out.races.is_empty() {
                        0
                    } else {
                        1
                    };
                    std::process::exit(code);
                }
                Err(e) => {
                    eprintln!("paradec: {file}: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
