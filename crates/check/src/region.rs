//! Per-region detectors: everything that needs a `RegionClassification`.
//!
//! [`RegionCx`] is the shared semantic core — the access-event state
//! machine (scopes, protection stack, divergence depth, task frames,
//! work-shared loop frames) plus every diagnostic the detectors emit.
//! Two drivers feed it:
//!
//! - the lexical AST walk in this module ([`check_parallel_region`]),
//! - the marker-driven MIR walk in [`crate::mir_lints`], which replays
//!   the same events from `parade_mir`'s lowered form (and adds the
//!   flow-sensitive PC009/PC010 on top).
//!
//! Keeping the event methods and message strings here is what makes the
//! two analyzers' PC001–PC008 verdicts byte-identical (asserted by the
//! corpus parity test and the CI parity gate).
//!
//! The detectors:
//!
//! - **PC001** shared-write-race — writes to shared data with no enclosing
//!   synchronization and no thread-disjoint subscript;
//! - **PC002** loop-carried-dependence — cross-iteration conflicts under a
//!   work-shared loop (`a[i]` written, `a[i-1]` read);
//! - **PC003** reduction-misuse — reduction variables touched outside
//!   their combining update, or combined with the wrong operator;
//! - **PC004** barrier-placement — barriers where the team can diverge;
//! - **PC005** nowait-unsynchronized-access — data written by a `nowait`
//!   loop touched by a block sibling before any joining barrier;
//! - **PC006** private-read-before-write — `private` variables read while
//!   still uninitialized (should likely be `firstprivate`);
//! - **PC007** directive-structure — bad nesting and malformed constructs
//!   *inside* the region (orphans are the outer walk's job);
//! - **PC008** task-unordered-shared-write — shared data written inside a
//!   `task`/`target` body with no `depend` edge on the variable and no
//!   enclosing synchronization: the whole team reaches the spawn point, so
//!   the task instances run concurrently under the work-stealing scheduler.

use std::collections::{HashMap, HashSet};

use parade_translator::analysis::{
    as_minmax_update, as_scalar_update, classify_region, flatten_single, loop_of,
    RegionClassification, Symbols, VarScope,
};
use parade_translator::ast::*;

use crate::diag::{Diag, LintId};

/// Entry point: check one `parallel` / `parallel for` region (AST walk).
pub(crate) fn check_parallel_region(
    dir: &Directive,
    body: &Stmt,
    syms: &Symbols,
    diags: &mut Vec<Diag>,
) {
    let class = classify_region(dir, body, syms);
    let mut cx = RegionCx::new(class, syms, diags, dir.span);
    match dir.kind {
        DirKind::ParallelFor => cx.enter_ws(dir, body),
        _ => cx.walk(body),
    }
}

/// Affine shape of one subscript expression relative to a loop variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Off {
    /// `i + c` (c may be 0 or negative) — injective in the loop variable.
    Affine(i64),
    /// A compile-time constant.
    Const(i64),
    /// Anything else.
    Unknown,
}

/// Classify `e` as an affine function of `v`, a constant, or unknown.
fn offset_in(e: &Expr, v: &str) -> Off {
    match e {
        Expr::Int(c) => Off::Const(*c),
        Expr::Ident(n) if n == v => Off::Affine(0),
        Expr::Binary(op @ (BinOp::Add | BinOp::Sub), a, b) => {
            let (a, b) = (offset_in(a, v), offset_in(b, v));
            let neg = matches!(op, BinOp::Sub);
            match (a, b) {
                (Off::Affine(x), Off::Const(c)) => Off::Affine(if neg { x - c } else { x + c }),
                (Off::Const(c), Off::Affine(x)) if !neg => Off::Affine(c + x),
                (Off::Const(x), Off::Const(y)) => Off::Const(if neg { x - y } else { x + y }),
                _ => Off::Unknown,
            }
        }
        _ => Off::Unknown,
    }
}

/// `i * c` / `c * i` with a nonzero constant: injective, though not an
/// offset we can compare (stride changes the image set).
fn is_scaled(e: &Expr, v: &str) -> bool {
    if let Expr::Binary(BinOp::Mul, a, b) = e {
        let m = |x: &Expr, y: &Expr| {
            matches!(x, Expr::Ident(n) if n == v) && matches!(y, Expr::Int(c) if *c != 0)
        };
        return m(a, b) || m(b, a);
    }
    false
}

fn calls_thread_num(e: &Expr) -> bool {
    let mut calls = Vec::new();
    e.calls(&mut calls);
    calls.iter().any(|c| c == "omp_get_thread_num")
}

/// One active work-shared loop: induction variable plus the access log the
/// dependence test runs over at loop exit.
struct WsFrame {
    var: String,
    dir_span: Span,
    writes: HashMap<String, Vec<Vec<Off>>>,
    reads: HashMap<String, Vec<Vec<Off>>>,
}

/// What a statement-level combining update (`x ⊕= e`, `x = fmin(x, e)`)
/// means for its target under the region's scoping.
pub(crate) enum UpdateVerdict {
    /// Target is not reduction-scoped: scan the whole expression normally.
    NotReduction,
    /// The sanctioned combining update: only the operand's reads are
    /// visible to the other detectors, and the target counts as written.
    Sanctioned,
    /// Mismatched operator — diagnosed; nothing further to scan.
    WrongOp,
}

pub(crate) struct RegionCx<'a> {
    pub(crate) class: RegionClassification,
    pub(crate) syms: &'a Symbols,
    diags: &'a mut Vec<Diag>,
    pub(crate) cur_span: Span,
    /// Enclosing one-thread constructs (`single`, `master`, `critical`,
    /// `atomic`): writes under them are synchronized.
    pub(crate) protect: Vec<&'static str>,
    /// Depth of enclosing thread-dependent conditions (PC004).
    pub(crate) divergent: usize,
    /// Enclosing `task`/`target` bodies: the set of variables each frame
    /// names in a `depend` clause. Writes to dep-edged variables are
    /// ordered by the scheduler's dependency graph; others race (PC008).
    pub(crate) task: Vec<HashSet<String>>,
    ws: Vec<WsFrame>,
    tracked: HashSet<String>,
    written: HashSet<String>,
    warned_uninit: HashSet<String>,
}

impl<'a> RegionCx<'a> {
    pub(crate) fn new(
        class: RegionClassification,
        syms: &'a Symbols,
        diags: &'a mut Vec<Diag>,
        span: Span,
    ) -> RegionCx<'a> {
        // Clause-private (and lastprivate) variables enter the region with
        // indeterminate values — track first accesses for PC006.
        let tracked: HashSet<String> = class
            .scopes
            .iter()
            .filter(|(n, s)| {
                matches!(s, VarScope::Private | VarScope::LastPrivate)
                    && !class.region_locals.contains(*n)
            })
            .map(|(n, _)| n.clone())
            .collect();
        RegionCx {
            class,
            syms,
            diags,
            cur_span: span,
            protect: Vec::new(),
            divergent: 0,
            task: Vec::new(),
            ws: Vec::new(),
            tracked,
            written: HashSet::new(),
            warned_uninit: HashSet::new(),
        }
    }

    pub(crate) fn diag(&mut self, lint: LintId, msg: String) {
        self.diags.push(Diag::new(lint, self.cur_span, msg));
    }

    /// PC007 clause-variable validation against the function's symbols.
    pub(crate) fn clause_vars(&mut self, d: &Directive) {
        crate::check_clause_vars(d, self.syms, self.diags);
    }

    pub(crate) fn diag_at(&mut self, lint: LintId, span: Span, msg: String) {
        self.diags.push(Diag::new(lint, span, msg));
    }

    /// Region scope of `n`, treating active work-shared loop variables as
    /// implicitly private (OpenMP 1.0 §2.4.1 — even when the `for` sits
    /// inside a `parallel` and the region classification left them shared).
    pub(crate) fn scope(&self, n: &str) -> VarScope {
        if self.ws.iter().any(|f| f.var == n) {
            return VarScope::Private;
        }
        self.class.scope_of(n)
    }

    pub(crate) fn protected(&self) -> bool {
        !self.protect.is_empty()
    }

    /// Inside a `task`/`target` body, is a write to `n` ordered by a
    /// `depend` edge on some enclosing task frame?
    fn task_dep_ordered(&self, n: &str) -> bool {
        self.task.iter().any(|deps| deps.contains(n))
    }

    // ---- variable events --------------------------------------------------

    pub(crate) fn mark_written(&mut self, n: &str) {
        self.written.insert(n.to_string());
    }

    fn priv_read(&mut self, n: &str) {
        if self.tracked.contains(n)
            && !self.written.contains(n)
            && self.warned_uninit.insert(n.to_string())
        {
            self.diag(
                LintId::PrivateUninitRead,
                format!(
                    "private variable `{n}` is read before any write in the region; \
                     it enters the region uninitialized — did you mean `firstprivate({n})`?"
                ),
            );
        }
    }

    pub(crate) fn read_var(&mut self, n: &str) {
        if let VarScope::Reduction(op) = self.scope(n) {
            self.diag(
                LintId::ReductionMisuse,
                format!(
                    "reduction variable `{n}` (reduction({}: {n})) is read outside its \
                     combining update; its value is unspecified until the region ends",
                    op.c_token()
                ),
            );
        }
        self.priv_read(n);
    }

    pub(crate) fn read_indexed(&mut self, n: &str, idxs: &[Expr]) {
        if let VarScope::Reduction(op) = self.scope(n) {
            self.diag(
                LintId::ReductionMisuse,
                format!(
                    "reduction variable `{n}` (reduction({}: {n})) is read outside its \
                     combining update",
                    op.c_token()
                ),
            );
        }
        if matches!(self.scope(n), VarScope::Shared) {
            self.log_access(n, idxs, false);
        }
        self.priv_read(n);
    }

    pub(crate) fn write_var(&mut self, n: &str) {
        match self.scope(n) {
            VarScope::Reduction(op) => self.diag(
                LintId::ReductionMisuse,
                format!(
                    "reduction variable `{n}` (reduction({}: {n})) is overwritten outside \
                     its combining update",
                    op.c_token()
                ),
            ),
            VarScope::Shared if !self.protected() && self.syms.get(n).is_some() => {
                if self.task.is_empty() {
                    self.diag(
                        LintId::SharedWriteRace,
                        format!(
                            "unsynchronized write to shared variable `{n}` in a parallel region; \
                             every thread writes it — guard with `critical`/`atomic` or privatize"
                        ),
                    );
                } else if !self.task_dep_ordered(n) {
                    self.diag(
                        LintId::TaskSharedWrite,
                        format!(
                            "write to shared variable `{n}` inside a task body with no \
                             `depend` edge on it; task instances run concurrently under the \
                             work-stealing scheduler — add `depend(out: {n})` or guard with \
                             `critical`/`atomic`"
                        ),
                    );
                }
            }
            _ => {}
        }
        self.mark_written(n);
    }

    pub(crate) fn write_indexed(&mut self, n: &str, idxs: &[Expr]) {
        match self.scope(n) {
            VarScope::Reduction(op) => self.diag(
                LintId::ReductionMisuse,
                format!(
                    "reduction variable `{n}` (reduction({}: {n})) is overwritten outside \
                     its combining update",
                    op.c_token()
                ),
            ),
            VarScope::Shared if self.syms.get(n).is_some() => {
                self.log_access(n, idxs, true);
                if !self.protected() && !self.disjoint_subscript(idxs) {
                    if self.task.is_empty() {
                        self.diag(
                            LintId::SharedWriteRace,
                            format!(
                                "write to shared array `{n}` is not provably distinct across \
                                 threads: no subscript is injective in the work-shared loop \
                                 variable or derived from omp_get_thread_num()"
                            ),
                        );
                    } else if !self.task_dep_ordered(n) {
                        self.diag(
                            LintId::TaskSharedWrite,
                            format!(
                                "write to shared array `{n}` inside a task body with no \
                                 `depend` edge and no disjoint subscript; task instances run \
                                 concurrently under the work-stealing scheduler"
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
        self.mark_written(n);
    }

    /// True if some subscript makes the element choice thread-disjoint.
    fn disjoint_subscript(&self, idxs: &[Expr]) -> bool {
        idxs.iter().any(|ix| {
            if calls_thread_num(ix) {
                return true;
            }
            match self.ws.last() {
                Some(f) => matches!(offset_in(ix, &f.var), Off::Affine(_)) || is_scaled(ix, &f.var),
                None => false,
            }
        })
    }

    /// Record an array access for the innermost work-shared loop's
    /// dependence test.
    pub(crate) fn log_access(&mut self, n: &str, idxs: &[Expr], is_write: bool) {
        let Some(frame) = self.ws.last() else {
            return;
        };
        let offs: Vec<Off> = idxs.iter().map(|ix| offset_in(ix, &frame.var)).collect();
        let frame = self.ws.last_mut().unwrap();
        let log = if is_write {
            &mut frame.writes
        } else {
            &mut frame.reads
        };
        log.entry(n.to_string()).or_default().push(offs);
    }

    // ---- shared diagnostics (single-sourced for both analyzers) -----------

    /// What a combining update to `target` with operator `op` means here;
    /// emits the wrong-operator PC003 itself.
    pub(crate) fn update_verdict(&mut self, target: &str, op: RedOp) -> UpdateVerdict {
        let VarScope::Reduction(declared) = self.scope(target) else {
            return UpdateVerdict::NotReduction;
        };
        if op == declared {
            UpdateVerdict::Sanctioned
        } else {
            self.diag(
                LintId::ReductionMisuse,
                format!(
                    "reduction variable `{target}` is declared \
                     `reduction({}: {target})` but combined with `{}`; the \
                     partial results will be merged with the declared operator",
                    declared.c_token(),
                    op.c_token()
                ),
            );
            UpdateVerdict::WrongOp
        }
    }

    /// PC005: `v` (written by the nowait loop at `loop_span`) touched at
    /// `at` with no intervening barrier.
    pub(crate) fn diag_nowait(&mut self, v: &str, loop_span: Span, at: Span) {
        self.diag_at(
            LintId::NowaitUnsyncRead,
            at,
            format!(
                "`{v}` is written by the nowait loop at line {} and accessed \
                 here with no intervening barrier; threads may still be in \
                 that loop",
                loop_span.line
            ),
        );
    }

    /// PC007 gate: team constructs (`barrier`/`for`/`single`/`master`) are
    /// illegal inside a task body. True if diagnosed (caller must skip the
    /// construct).
    pub(crate) fn team_in_task(&mut self, kind: &DirKind) -> bool {
        if !self.task.is_empty()
            && matches!(
                kind,
                DirKind::Barrier | DirKind::For | DirKind::Single | DirKind::Master
            )
        {
            self.diag(
                LintId::DirectiveStructure,
                format!(
                    "`{}` may not be closely nested inside a `task` region",
                    crate::kind_name(kind)
                ),
            );
            return true;
        }
        false
    }

    pub(crate) fn diag_nested_parallel(&mut self) {
        self.diag(
            LintId::DirectiveStructure,
            "nested parallel regions are not supported by the ParADE runtime".into(),
        );
    }

    /// PC007 gate for `for`/`single` nesting. `label` is the construct as
    /// it should read in the message. True if diagnosed.
    pub(crate) fn check_ws_nesting(&mut self, label: &str) -> bool {
        if let Some(ctx) = self.bad_ws_nesting() {
            self.diag(
                LintId::DirectiveStructure,
                format!("{label} may not be nested inside {ctx}"),
            );
            return true;
        }
        false
    }

    /// PC007 gate for `master` (legal under `protect`, not under `ws`).
    pub(crate) fn check_master_nesting(&mut self) -> bool {
        if !self.ws.is_empty() {
            self.diag(
                LintId::DirectiveStructure,
                "`master` may not be nested inside a work-sharing loop".into(),
            );
            return true;
        }
        false
    }

    pub(crate) fn diag_non_canonical_ws(&mut self) {
        self.diag(
            LintId::DirectiveStructure,
            "work-shared loop is not in canonical form \
             (`for (i = lo; i < hi; i += c)` with a positive constant stride)"
                .into(),
        );
    }

    pub(crate) fn diag_malformed_atomic(&mut self) {
        self.diag(
            LintId::DirectiveStructure,
            "`atomic` must apply to a single scalar update statement \
             (`x += e`, `x = x + e`, `x = fmin(x, e)`, …)"
                .into(),
        );
    }

    /// The lexical PC004 cascade for an explicit barrier. True if any rule
    /// fired (the MIR walker uses this to gate PC009).
    pub(crate) fn barrier_checks(&mut self) -> bool {
        if let Some(ctx) = self.protect.last().copied() {
            self.diag(
                LintId::BarrierPlacement,
                format!(
                    "barrier inside `{ctx}` construct: threads that do not \
                     execute the construct never reach it, deadlocking the team"
                ),
            );
            true
        } else if !self.ws.is_empty() {
            self.diag(
                LintId::BarrierPlacement,
                "barrier inside a work-sharing loop body: iterations are divided \
                 among threads, so threads hit it a different number of times"
                    .into(),
            );
            true
        } else if self.divergent > 0 {
            self.diag(
                LintId::BarrierPlacement,
                "barrier under a thread-dependent condition: threads may disagree \
                 on whether it is reached"
                    .into(),
            );
            true
        } else {
            false
        }
    }

    /// PC009 (MIR-only): `what` sits in a block the divergence analysis
    /// proved thread-divergent.
    pub(crate) fn diag_barrier_divergence(&mut self, what: &str) {
        self.diag(
            LintId::BarrierDivergence,
            format!(
                "{what} in thread-divergent control flow: the divergence analysis \
                 proves threads of the team can disagree on reaching it; threads \
                 that arrive wait forever"
            ),
        );
    }

    /// PC010 (MIR-only): the region's task `depend` clauses form a cycle.
    pub(crate) fn diag_task_cycle(&mut self, span: Span, vars: &str, lines: &str) {
        self.diag_at(
            LintId::TaskDependCycle,
            span,
            format!(
                "task `depend` clauses form a cycle through {vars} (tasks at \
                 lines {lines}); the scheduler can never release them, \
                 deadlocking the region at the next `taskwait`"
            ),
        );
    }

    // ---- work-shared loop frames ------------------------------------------

    pub(crate) fn ws_push(&mut self, var: String, dir_span: Span) {
        self.ws.push(WsFrame {
            var,
            dir_span,
            writes: HashMap::new(),
            reads: HashMap::new(),
        });
    }

    /// Pop the innermost work-shared loop frame and run its PC002
    /// dependence test.
    pub(crate) fn ws_pop_report(&mut self) {
        let frame = self.ws.pop().expect("ws frame");
        self.report_dependences(frame);
    }

    // ---- expressions (AST driver) -----------------------------------------

    /// A statement-level expression: reduction-update recognition first,
    /// generic access scan otherwise.
    fn check_expr_stmt(&mut self, e: &Expr) {
        if let Some(u) = as_scalar_update(e).or_else(|| as_minmax_update(e)) {
            match self.update_verdict(&u.target, u.op) {
                UpdateVerdict::Sanctioned => {
                    // The sanctioned combining update: only the operand's
                    // reads are visible to the other detectors.
                    self.expr(&u.operand);
                    self.mark_written(&u.target);
                    return;
                }
                UpdateVerdict::WrongOp => return,
                UpdateVerdict::NotReduction => {}
            }
        }
        self.expr(e);
    }

    /// Generic expression scan: evaluation-ordered reads and writes.
    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Assign(op, lhs, rhs) => {
                self.expr(rhs);
                match lhs.as_ref() {
                    Expr::Ident(n) => {
                        if op.is_some() {
                            self.read_var(n);
                        }
                        self.write_var(n);
                    }
                    Expr::Index(n, idxs) => {
                        for ix in idxs {
                            self.expr(ix);
                        }
                        if op.is_some() && matches!(self.scope(n), VarScope::Shared) {
                            self.log_access(n, idxs, false);
                        }
                        self.write_indexed(n, idxs);
                    }
                    other => self.expr(other),
                }
            }
            Expr::Ident(n) => self.read_var(n),
            Expr::Index(n, idxs) => {
                for ix in idxs {
                    self.expr(ix);
                }
                self.read_indexed(n, idxs);
            }
            Expr::Call(_, args) => {
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Unary(_, a) => self.expr(a),
            Expr::Binary(_, a, b) => {
                self.expr(a);
                self.expr(b);
            }
            Expr::Cond(c, a, b) => {
                self.expr(c);
                self.expr(a);
                self.expr(b);
            }
            Expr::Int(_) | Expr::Float(_) | Expr::Str(_) => {}
        }
    }

    /// A condition is thread-dependent if it calls omp_get_thread_num()
    /// or reads any non-shared (per-thread) variable.
    fn cond_thread_dep(&self, e: &Expr) -> bool {
        if calls_thread_num(e) {
            return true;
        }
        let mut vars = Vec::new();
        e.vars(&mut vars);
        vars.iter()
            .any(|v| !matches!(self.scope(v), VarScope::Shared))
    }

    // ---- statements (AST driver) ------------------------------------------

    fn walk(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl(d) => {
                self.cur_span = d.span;
                if let Some(init) = &d.init {
                    self.expr(init);
                }
                self.mark_written(&d.name);
            }
            Stmt::Expr(e, sp) => {
                self.cur_span = *sp;
                self.check_expr_stmt(e);
            }
            Stmt::If(c, a, b) => {
                self.expr(c);
                let div = self.cond_thread_dep(c);
                self.divergent += div as usize;
                self.walk(a);
                if let Some(b) = b {
                    self.walk(b);
                }
                self.divergent -= div as usize;
            }
            Stmt::While(c, b) => {
                self.expr(c);
                let div = self.cond_thread_dep(c);
                self.divergent += div as usize;
                self.walk(b);
                self.divergent -= div as usize;
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                // A sequential loop inside the region. Its trip count is
                // uniform across threads only if it is canonical with
                // thread-uniform bounds.
                let uniform = loop_of(s).is_some_and(|l| {
                    let mut vars = Vec::new();
                    l.lo.vars(&mut vars);
                    l.hi.vars(&mut vars);
                    vars.iter()
                        .all(|v| matches!(self.scope(v), VarScope::Shared))
                });
                for e in [init, cond, step].into_iter().flatten() {
                    self.expr(e);
                }
                let div = !uniform;
                self.divergent += div as usize;
                self.walk(body);
                self.divergent -= div as usize;
            }
            Stmt::Block(ss) => self.walk_block(ss),
            Stmt::Return(Some(e)) => self.expr(e),
            Stmt::Omp(d, b) => self.directive(d, b.as_deref()),
            Stmt::Return(None) | Stmt::Break | Stmt::Continue | Stmt::Empty => {}
        }
    }

    /// Statement lists carry the PC005 state: variables written by a
    /// preceding `nowait` loop that no barrier has joined yet.
    fn walk_block(&mut self, ss: &[Stmt]) {
        let mut pending: HashMap<String, Span> = HashMap::new();
        for s in ss {
            if let Stmt::Omp(d, _) = s {
                if matches!(d.kind, DirKind::Barrier) {
                    pending.clear();
                    self.walk(s);
                    continue;
                }
            }
            if !pending.is_empty() {
                let mut used = Vec::new();
                stmt_uses(s, &mut used);
                let mut hit = Vec::new();
                for v in used {
                    if let Some(loop_span) = pending.remove(&v) {
                        hit.push((v, loop_span));
                    }
                }
                for (v, loop_span) in hit {
                    let at = stmt_span(s).unwrap_or(self.cur_span);
                    self.diag_nowait(&v, loop_span, at);
                }
            }
            if let Stmt::Omp(d, Some(b)) = s {
                if matches!(d.kind, DirKind::For | DirKind::Single) {
                    if d.nowait() {
                        let mut w = Vec::new();
                        stmt_write_targets(b, &mut w);
                        // The loop's own induction variable is implicitly
                        // private — it never escapes the construct.
                        let loop_var = loop_of(b).map(|l| l.var);
                        for v in w {
                            if Some(&v) != loop_var.as_ref()
                                && matches!(self.scope(&v), VarScope::Shared)
                            {
                                pending.insert(v, d.span);
                            }
                        }
                    } else {
                        // The implicit barrier at construct exit joins the
                        // whole team.
                        pending.clear();
                    }
                }
            }
            self.walk(s);
        }
    }

    fn directive(&mut self, d: &Directive, body: Option<&Stmt>) {
        self.cur_span = d.span;
        crate::check_clause_vars(d, self.syms, self.diags);
        // Mirror the interpreter's closely-nested conformance rule: team
        // constructs make no sense inside a task body, whose executor may
        // be any single thread on any node.
        if self.team_in_task(&d.kind) {
            return;
        }
        match &d.kind {
            DirKind::Parallel | DirKind::ParallelFor => {
                self.diag_nested_parallel();
            }
            DirKind::For => {
                if self.check_ws_nesting("work-sharing `for`") {
                    return;
                }
                if let Some(b) = body {
                    self.enter_ws(d, b);
                }
            }
            DirKind::Single => {
                if self.check_ws_nesting("`single`") {
                    return;
                }
                self.protect.push("single");
                if let Some(b) = body {
                    self.walk(b);
                }
                self.protect.pop();
            }
            DirKind::Master => {
                if self.check_master_nesting() {
                    return;
                }
                self.protect.push("master");
                if let Some(b) = body {
                    self.walk(b);
                }
                self.protect.pop();
            }
            DirKind::Critical(_) => {
                self.protect.push("critical");
                if let Some(b) = body {
                    self.walk(b);
                }
                self.protect.pop();
            }
            DirKind::Atomic => {
                let stmt = body.map(flatten_single);
                let ok = matches!(
                    stmt,
                    Some(Stmt::Expr(e, _))
                        if as_scalar_update(e).is_some() || as_minmax_update(e).is_some()
                );
                if !ok {
                    self.diag_malformed_atomic();
                }
                self.protect.push("atomic");
                if let Some(b) = body {
                    self.walk(b);
                }
                self.protect.pop();
            }
            DirKind::Barrier => {
                self.barrier_checks();
            }
            DirKind::Task | DirKind::Target => {
                let deps: HashSet<String> = d.depends().into_iter().map(|(_, v)| v).collect();
                self.task.push(deps);
                if let Some(b) = body {
                    self.walk(b);
                }
                self.task.pop();
            }
            DirKind::Taskwait => {
                // Joins the current task's children — creates no ordering
                // the lexical detectors track, and carries no body.
            }
        }
    }

    /// Context that makes a nested work-sharing construct illegal.
    fn bad_ws_nesting(&self) -> Option<String> {
        if !self.ws.is_empty() {
            return Some("another work-sharing construct".into());
        }
        self.protect.last().map(|c| format!("`{c}`"))
    }

    /// Enter a work-shared loop (`for` / the loop of `parallel for`).
    fn enter_ws(&mut self, dir: &Directive, body: &Stmt) {
        let Some(l) = loop_of(body) else {
            self.diag_non_canonical_ws();
            return;
        };
        self.expr(&l.lo);
        self.expr(&l.hi);
        self.mark_written(&l.var);
        self.ws_push(l.var, dir.span);
        self.walk(&l.body);
        self.ws_pop_report();
    }

    /// PC002: cross-iteration conflicts recorded while walking a
    /// work-shared loop body.
    fn report_dependences(&mut self, f: WsFrame) {
        let empty = Vec::new();
        let mut names: Vec<&String> = f.writes.keys().collect();
        names.sort();
        for arr in names {
            let writes = &f.writes[arr];
            let reads = f.reads.get(arr).unwrap_or(&empty);
            let mut conflict = None;
            for w in writes {
                for r in reads {
                    if offsets_conflict(w, r) {
                        conflict = Some((w.clone(), r.clone(), "reads"));
                        break;
                    }
                }
                if conflict.is_some() {
                    break;
                }
            }
            if conflict.is_none() {
                'outer: for (i, w) in writes.iter().enumerate() {
                    for w2 in &writes[i + 1..] {
                        if offsets_conflict(w, w2) {
                            conflict = Some((w.clone(), w2.clone(), "also writes"));
                            break 'outer;
                        }
                    }
                }
            }
            if let Some((a, b, verb)) = conflict {
                self.diags.push(Diag::new(
                    LintId::LoopCarriedDependence,
                    f.dir_span,
                    format!(
                        "loop-carried dependence on `{arr}`: an iteration writes \
                         {} while another iteration {verb} {}; iterations of a \
                         work-shared loop run on different threads with no ordering",
                        fmt_access(arr, &f.var, &a),
                        fmt_access(arr, &f.var, &b),
                    ),
                ));
            }
        }
    }
}

/// Two access vectors of the same array conflict across iterations when no
/// dimension keeps them always-apart (distinct constants) and some
/// dimension moves between iterations (differing affine offsets, or an
/// affine offset against a constant).
fn offsets_conflict(a: &[Off], b: &[Off]) -> bool {
    let disjoint = a
        .iter()
        .zip(b)
        .any(|p| matches!(p, (Off::Const(x), Off::Const(y)) if x != y));
    if disjoint {
        return false;
    }
    a.iter().zip(b).any(|p| {
        matches!(p, (Off::Affine(x), Off::Affine(y)) if x != y)
            || matches!(
                p,
                (Off::Affine(_), Off::Const(_)) | (Off::Const(_), Off::Affine(_))
            )
    })
}

fn fmt_access(arr: &str, var: &str, offs: &[Off]) -> String {
    let mut s = format!("`{arr}");
    for o in offs {
        match o {
            Off::Affine(0) => s.push_str(&format!("[{var}]")),
            Off::Affine(c) if *c > 0 => s.push_str(&format!("[{var}+{c}]")),
            Off::Affine(c) => s.push_str(&format!("[{var}-{}]", -c)),
            Off::Const(c) => s.push_str(&format!("[{c}]")),
            Off::Unknown => s.push_str("[…]"),
        }
    }
    s.push('`');
    s
}
