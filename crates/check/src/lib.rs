//! # parade-check — static OpenMP race & conformance analyzer
//!
//! A lint pass over the translator AST that runs before the program ever
//! touches the simulated cluster (`paradec check`, and automatically ahead
//! of `paradec run`/`translate`). The ParADE paper's translator decides
//! *how* to lower each directive (collective vs lock, §4.2/§5.2.1); this
//! crate decides whether the program *means* anything under the OpenMP
//! relaxed-consistency contract at all — unsynchronized shared writes,
//! loop-carried dependences under `omp for`, misused reductions, divergent
//! barriers, and structural misuse the runtime would reject.
//!
//! Every diagnostic carries a stable lint id (`PC001`–`PC008`), a severity,
//! and the source span of the offending construct:
//!
//! ```text
//! examples/racy.c:9:5: error[PC001]: unsynchronized write to shared variable `sum` …
//! ```
//!
//! The static verdicts are cross-checked dynamically by the happens-before
//! oracle in `parade_translator::oracle` (FastTrack-style vector-clock race
//! detection inside the interpreter); `tests/check_corpus.rs` at the
//! workspace root asserts the two agree on a corpus of small OpenMP
//! programs.

pub mod diag;
mod mir_lints;
mod region;

pub use diag::{has_errors, sort_diags, Diag, LintId, Severity};

use parade_mir::{lower_program, span_arg, vt_now};
use parade_trace::EventKind;
use parade_translator::analysis::Symbols;
use parade_translator::ast::*;
use parade_translator::{parse, ParseError};

/// Parse and check with the MIR analyzer; parse errors are returned, not
/// converted to lints.
pub fn check_source(src: &str) -> Result<Vec<Diag>, ParseError> {
    Ok(check_program(&parse(src)?))
}

/// Parse and check with the lexical AST analyzer (`--ast-check`).
pub fn check_source_ast(src: &str) -> Result<Vec<Diag>, ParseError> {
    Ok(check_program_ast(&parse(src)?))
}

/// The default analyzer: lower to MIR and replay the detectors from the
/// marker stream, plus the flow-sensitive PC009/PC010. Diagnostics come
/// back sorted by source position, duplicates removed.
pub fn check_program(prog: &Program) -> Vec<Diag> {
    parade_trace::begin_arg(EventKind::CheckAnalyze, span_arg::LOWER, vt_now());
    let funcs = lower_program(prog);
    parade_trace::end(EventKind::CheckAnalyze, vt_now());
    let mut diags = Vec::new();
    for f in &funcs {
        mir_lints::check_func(f, &mut diags);
    }
    sort_diags(&mut diags);
    diags
}

/// The lexical AST analyzer (PC001–PC008 only). Kept as the parity oracle
/// for the MIR path: on any program, its diagnostics must equal the MIR
/// analyzer's minus PC009/PC010 (asserted by the corpus parity test and
/// the CI parity gate).
pub fn check_program_ast(prog: &Program) -> Vec<Diag> {
    let mut diags = Vec::new();
    for item in &prog.items {
        if let Item::Func(f) = item {
            let syms = Symbols::collect(prog, f);
            walk_outer(&syms, &f.body, &mut diags);
        }
    }
    sort_diags(&mut diags);
    diags
}

/// The walk outside any parallel region: dispatch regions to the detectors
/// in [`region`], flag orphaned constructs (the interpreter rejects them at
/// runtime — PC007 makes that a compile-time verdict).
fn walk_outer(syms: &Symbols, s: &Stmt, diags: &mut Vec<Diag>) {
    match s {
        Stmt::Omp(d, body) => {
            check_clause_vars(d, syms, diags);
            match d.kind {
                DirKind::Parallel | DirKind::ParallelFor => match body {
                    Some(b) => region::check_parallel_region(d, b, syms, diags),
                    None => diags.push(Diag::new(
                        LintId::DirectiveStructure,
                        d.span,
                        format!(
                            "`{}` directive has no statement to apply to",
                            kind_name(&d.kind)
                        ),
                    )),
                },
                // Tasking constructs are legal at serial scope: a team of
                // one executes them undeferred, so there is no concurrency
                // to misuse (mirrors the interpreter).
                DirKind::Task | DirKind::Target | DirKind::Taskwait => {
                    if let Some(b) = body {
                        walk_outer(syms, b, diags);
                    }
                }
                _ => {
                    diags.push(Diag::new(
                        LintId::DirectiveStructure,
                        d.span,
                        format!(
                            "`{}` directive outside a parallel region; the runtime \
                             rejects orphaned constructs",
                            kind_name(&d.kind)
                        ),
                    ));
                    if let Some(b) = body {
                        walk_outer(syms, b, diags);
                    }
                }
            }
        }
        Stmt::Block(ss) => {
            for s in ss {
                walk_outer(syms, s, diags);
            }
        }
        Stmt::If(_, a, b) => {
            walk_outer(syms, a, diags);
            if let Some(b) = b {
                walk_outer(syms, b, diags);
            }
        }
        Stmt::While(_, b) => walk_outer(syms, b, diags),
        Stmt::For { body, .. } => walk_outer(syms, body, diags),
        _ => {}
    }
}

pub(crate) fn kind_name(k: &DirKind) -> &'static str {
    match k {
        DirKind::Parallel => "parallel",
        DirKind::For => "for",
        DirKind::ParallelFor => "parallel for",
        DirKind::Critical(_) => "critical",
        DirKind::Atomic => "atomic",
        DirKind::Single => "single",
        DirKind::Master => "master",
        DirKind::Barrier => "barrier",
        DirKind::Task => "task",
        DirKind::Taskwait => "taskwait",
        DirKind::Target => "target",
    }
}

/// PC007: every variable named in a data-scoping clause must resolve to a
/// declaration, and reduction variables must be scalars.
pub(crate) fn check_clause_vars(dir: &Directive, syms: &Symbols, diags: &mut Vec<Diag>) {
    let flag = |name: &str, clause: &str, diags: &mut Vec<Diag>| {
        diags.push(Diag::new(
            LintId::DirectiveStructure,
            dir.span,
            format!("unknown variable `{name}` in `{clause}` clause"),
        ));
    };
    for c in &dir.clauses {
        if let Clause::Device(e) = c {
            let mut vars = Vec::new();
            e.vars(&mut vars);
            for name in &vars {
                if syms.get(name).is_none() {
                    flag(name, "device", diags);
                }
            }
            continue;
        }
        let (vars, clause): (&Vec<String>, &str) = match c {
            Clause::Private(v) => (v, "private"),
            Clause::Shared(v) => (v, "shared"),
            Clause::FirstPrivate(v) => (v, "firstprivate"),
            Clause::LastPrivate(v) => (v, "lastprivate"),
            Clause::Reduction(_, v) => (v, "reduction"),
            Clause::Depend(_, v) => (v, "depend"),
            Clause::Map(_, v) => (v, "map"),
            _ => continue,
        };
        for name in vars {
            match syms.get(name) {
                None => flag(name, clause, diags),
                Some(d) if clause == "reduction" && d.is_array() => {
                    diags.push(Diag::new(
                        LintId::DirectiveStructure,
                        dir.span,
                        format!("reduction variable `{name}` must be a scalar"),
                    ));
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<&'static str> {
        let mut c: Vec<&'static str> = check_source(src)
            .expect("parse")
            .iter()
            .map(|d| d.lint.code())
            .collect();
        c.dedup();
        c
    }

    #[test]
    fn clean_reduction_loop_has_no_diags() {
        let src = r#"
int main() {
    int i; double sum; double a[64];
    sum = 0.0;
    #pragma omp parallel for reduction(+ : sum)
    for (i = 0; i < 64; i++) sum += a[i];
    return 0;
}
"#;
        assert!(codes(src).is_empty(), "{:?}", check_source(src).unwrap());
    }

    #[test]
    fn pc001_shared_scalar_write() {
        let src = r#"
int main() {
    int i; double t; double a[64];
    #pragma omp parallel for
    for (i = 0; i < 64; i++) { t = a[i]; a[i] = t * 2.0; }
    return 0;
}
"#;
        assert_eq!(codes(src), vec!["PC001"]);
    }

    #[test]
    fn pc001_array_write_without_disjoint_subscript() {
        let src = r#"
int main() {
    double a[8];
    #pragma omp parallel
    { a[0] = 1.0; }
    return 0;
}
"#;
        assert_eq!(codes(src), vec!["PC001"]);
    }

    #[test]
    fn pc001_thread_num_subscript_is_disjoint() {
        let src = r#"
int main() {
    double a[8];
    #pragma omp parallel
    { a[omp_get_thread_num()] = 1.0; }
    return 0;
}
"#;
        assert!(codes(src).is_empty());
    }

    #[test]
    fn pc002_loop_carried_read() {
        let src = r#"
int main() {
    int i; double a[64];
    #pragma omp parallel for
    for (i = 1; i < 64; i++) a[i] = a[i - 1] + 1.0;
    return 0;
}
"#;
        assert_eq!(codes(src), vec!["PC002"]);
    }

    #[test]
    fn stencil_reading_only_same_index_is_clean() {
        let src = r#"
int main() {
    int i; double a[64]; double b[64];
    #pragma omp parallel for
    for (i = 0; i < 64; i++) b[i] = a[i] * 0.5;
    return 0;
}
"#;
        assert!(codes(src).is_empty());
    }

    #[test]
    fn jacobi_two_array_stencil_is_clean() {
        // Reads neighbours of `a`, writes `b`: offsets differ but across
        // different arrays — no dependence.
        let src = r#"
int main() {
    int i; double a[64]; double b[64];
    #pragma omp parallel for
    for (i = 1; i < 63; i++) b[i] = 0.5 * (a[i - 1] + a[i + 1]);
    return 0;
}
"#;
        assert!(codes(src).is_empty());
    }

    #[test]
    fn pc003_wrong_operator() {
        let src = r#"
int main() {
    int i; double p;
    #pragma omp parallel for reduction(* : p)
    for (i = 0; i < 8; i++) p += 1.0;
    return 0;
}
"#;
        assert_eq!(codes(src), vec!["PC003"]);
    }

    #[test]
    fn pc003_read_outside_update() {
        let src = r#"
int main() {
    int i; double s; double a[8];
    #pragma omp parallel for reduction(+ : s)
    for (i = 0; i < 8; i++) { a[i] = s; s += 1.0; }
    return 0;
}
"#;
        assert_eq!(codes(src), vec!["PC003"]);
    }

    #[test]
    fn pc003_minmax_update_is_sanctioned() {
        let src = r#"
int main() {
    int i; double m; double a[8];
    #pragma omp parallel for reduction(min : m)
    for (i = 0; i < 8; i++) m = fmin(m, a[i]);
    return 0;
}
"#;
        assert!(codes(src).is_empty());
    }

    #[test]
    fn pc004_barrier_in_single() {
        let src = r#"
int main() {
    double x;
    #pragma omp parallel
    {
        #pragma omp single
        {
            x = 1.0;
            #pragma omp barrier
        }
    }
    return 0;
}
"#;
        assert_eq!(codes(src), vec!["PC004"]);
    }

    #[test]
    fn pc004_barrier_under_thread_dependent_condition() {
        let src = r#"
int main() {
    #pragma omp parallel
    {
        if (omp_get_thread_num() == 0) {
            #pragma omp barrier
        }
    }
    return 0;
}
"#;
        assert_eq!(codes(src), vec!["PC004"]);
    }

    #[test]
    fn pc005_read_after_nowait() {
        let src = r#"
int main() {
    int i; int j; double a[64]; double b[64];
    #pragma omp parallel
    {
        #pragma omp for nowait
        for (i = 0; i < 64; i++) a[i] = 1.0;
        #pragma omp for
        for (j = 0; j < 64; j++) b[j] = a[63 - j];
    }
    return 0;
}
"#;
        assert_eq!(codes(src), vec!["PC005"]);
    }

    #[test]
    fn pc005_cleared_by_barrier() {
        let src = r#"
int main() {
    int i; int j; double a[64]; double b[64];
    #pragma omp parallel
    {
        #pragma omp for nowait
        for (i = 0; i < 64; i++) a[i] = 1.0;
        #pragma omp barrier
        #pragma omp for
        for (j = 0; j < 64; j++) b[j] = a[63 - j];
    }
    return 0;
}
"#;
        assert!(codes(src).is_empty());
    }

    #[test]
    fn pc006_private_read_before_write() {
        let src = r#"
int main() {
    double t; double x;
    #pragma omp parallel private(t)
    {
        #pragma omp critical
        { x = x + t; }
        t = 0.0;
    }
    return 0;
}
"#;
        let ds = check_source(src).unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].lint, LintId::PrivateUninitRead);
        assert_eq!(ds[0].severity, Severity::Warning);
    }

    #[test]
    fn pc007_orphaned_for() {
        let src = r#"
int main() {
    int i; double a[8];
    #pragma omp for
    for (i = 0; i < 8; i++) a[i] = 1.0;
    return 0;
}
"#;
        assert_eq!(codes(src), vec!["PC007"]);
    }

    #[test]
    fn pc007_nested_parallel_and_unknown_clause_var() {
        let src = r#"
int main() {
    double x;
    #pragma omp parallel private(nosuch)
    {
        #pragma omp parallel
        { x = 1.0; }
    }
    return 0;
}
"#;
        let ds = check_source(src).unwrap();
        assert!(
            ds.iter().all(|d| d.lint == LintId::DirectiveStructure),
            "{ds:?}"
        );
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn pc007_non_canonical_ws_loop() {
        let src = r#"
int main() {
    int i; double a[8];
    #pragma omp parallel for
    for (i = 8; i > 0; i = i - 1) a[i - 1] = 1.0;
    return 0;
}
"#;
        assert_eq!(codes(src), vec!["PC007"]);
    }

    #[test]
    fn pc007_malformed_atomic() {
        let src = r#"
int main() {
    double x; double y;
    #pragma omp parallel
    {
        #pragma omp atomic
        x = y;
    }
    return 0;
}
"#;
        assert_eq!(codes(src), vec!["PC007"]);
    }

    #[test]
    fn pc008_task_unordered_shared_write() {
        let src = r#"
int main() {
    double sum;
    sum = 0.0;
    #pragma omp parallel
    {
        #pragma omp task
        { sum = sum + 1.0; }
        #pragma omp taskwait
    }
    return 0;
}
"#;
        assert_eq!(codes(src), vec!["PC008"]);
    }

    #[test]
    fn pc008_cleared_by_depend_edge() {
        let src = r#"
int main() {
    double sum;
    sum = 0.0;
    #pragma omp parallel
    {
        #pragma omp task depend(inout: sum)
        { sum = sum + 1.0; }
        #pragma omp taskwait
    }
    return 0;
}
"#;
        assert!(codes(src).is_empty(), "{:?}", check_source(src).unwrap());
    }

    #[test]
    fn pc008_cleared_by_critical_inside_task() {
        let src = r#"
int main() {
    double sum;
    sum = 0.0;
    #pragma omp parallel
    {
        #pragma omp task
        {
            #pragma omp critical
            { sum = sum + 1.0; }
        }
        #pragma omp taskwait
    }
    return 0;
}
"#;
        assert!(codes(src).is_empty(), "{:?}", check_source(src).unwrap());
    }

    #[test]
    fn pc008_target_map_write_without_depend() {
        let src = r#"
int main() {
    double x;
    x = 0.0;
    #pragma omp parallel
    {
        #pragma omp target map(tofrom: x)
        { x = x + 1.0; }
    }
    return 0;
}
"#;
        assert_eq!(codes(src), vec!["PC008"]);
    }

    #[test]
    fn tasking_constructs_are_legal_at_serial_scope() {
        let src = r#"
int main() {
    double x;
    x = 0.0;
    #pragma omp task depend(out: x)
    { x = 1.0; }
    #pragma omp taskwait
    #pragma omp target map(tofrom: x) device(0)
    { x = x * 2.0; }
    return 0;
}
"#;
        assert!(codes(src).is_empty(), "{:?}", check_source(src).unwrap());
    }

    #[test]
    fn pc007_barrier_inside_task_body() {
        let src = r#"
int main() {
    #pragma omp parallel
    {
        #pragma omp task
        {
            #pragma omp barrier
        }
        #pragma omp taskwait
    }
    return 0;
}
"#;
        let ds = check_source(src).unwrap();
        assert!(
            ds.iter().any(|d| d.lint == LintId::DirectiveStructure
                && d.message.contains("closely nested inside a `task` region")),
            "{ds:?}"
        );
    }

    #[test]
    fn pc007_unknown_depend_and_map_vars() {
        let src = r#"
int main() {
    double x;
    #pragma omp parallel
    {
        #pragma omp task depend(out: nosuch)
        { x = 1.0; }
        #pragma omp taskwait
    }
    return 0;
}
"#;
        let ds = check_source(src).unwrap();
        assert!(
            ds.iter().any(|d| d.lint == LintId::DirectiveStructure
                && d.message.contains("`nosuch` in `depend`")),
            "{ds:?}"
        );
    }

    #[test]
    fn exit_gate_predicate() {
        let ds = check_source(
            r#"
int main() {
    double t;
    #pragma omp parallel private(t)
    { double u; u = t; }
    return 0;
}
"#,
        )
        .unwrap();
        // A lone warning must not trip the gate.
        assert_eq!(ds.len(), 1);
        assert!(!has_errors(&ds));
    }

    #[test]
    fn pc009_barrier_after_divergent_break() {
        // Lexically the barrier is under no thread-dependent condition
        // (the divergent `if` closed at the `break`), so the AST analyzer
        // stays silent — only the CFG divergence analysis sees that
        // threads disagree on how many iterations reach the barrier.
        let src = r#"
int main() {
    int i; int s;
    #pragma omp parallel private(i, s)
    {
        s = 0;
        for (i = 0; i < 8; i = i + 1) {
            if (omp_get_thread_num() > 0) { break; }
            #pragma omp barrier
            s = s + 1;
        }
    }
    return 0;
}
"#;
        assert_eq!(codes(src), vec!["PC009"]);
        assert!(check_source_ast(src).unwrap().is_empty());
    }

    #[test]
    fn pc009_silent_on_uniform_break() {
        let src = r#"
int main() {
    int i; int s; int n;
    n = 64;
    #pragma omp parallel private(i, s)
    {
        s = 0;
        for (i = 0; i < 8; i = i + 1) {
            if (n > 32) { break; }
            #pragma omp barrier
            s = s + 1;
        }
    }
    return 0;
}
"#;
        assert!(codes(src).is_empty(), "{:?}", check_source(src).unwrap());
    }

    #[test]
    fn pc009_firstprivate_entry_is_uniform() {
        // `firstprivate` copies start with the same value on every
        // thread, so a branch on one does not diverge.
        let src = r#"
int main() {
    int i; int k;
    k = 1;
    #pragma omp parallel firstprivate(k) private(i)
    {
        for (i = 0; i < 8; i = i + 1) {
            if (k > 0) { break; }
            #pragma omp barrier
        }
    }
    return 0;
}
"#;
        assert!(codes(src).is_empty(), "{:?}", check_source(src).unwrap());
    }

    #[test]
    fn pc010_crossed_depends_cycle() {
        let src = r#"
int main() {
    double x; double y;
    x = 0.0;
    y = 0.0;
    #pragma omp parallel
    {
        #pragma omp task depend(in: y) depend(out: x)
        { x = y + 1.0; }
        #pragma omp task depend(in: x) depend(out: y)
        { y = x + 1.0; }
        #pragma omp taskwait
    }
    return 0;
}
"#;
        let ds = check_source(src).unwrap();
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].lint, LintId::TaskDependCycle);
        // Anchored at the lexically-first task on the cycle.
        assert_eq!((ds[0].span.line, ds[0].span.col), (8, 9));
        assert!(check_source_ast(src).unwrap().is_empty());
    }

    #[test]
    fn pc010_silent_on_chain_and_inout() {
        // Forward chain plus an inout self-chain: backward resolution
        // only, no cycle.
        let src = r#"
int main() {
    double x; double y;
    x = 0.0;
    y = 0.0;
    #pragma omp parallel
    {
        #pragma omp task depend(out: x)
        { x = 1.0; }
        #pragma omp task depend(inout: x)
        { x = x + 1.0; }
        #pragma omp task depend(in: x) depend(out: y)
        { y = x; }
        #pragma omp taskwait
    }
    return 0;
}
"#;
        assert!(codes(src).is_empty(), "{:?}", check_source(src).unwrap());
    }

    #[test]
    fn mir_and_ast_verdicts_agree() {
        // The MIR analyzer minus its flow-sensitive lints must equal the
        // AST analyzer exactly — spans, messages, order.
        let srcs = [
            r#"
int main() {
    int i; double t; double s; double a[64];
    #pragma omp parallel for reduction(* : s)
    for (i = 0; i < 64; i++) { t = a[i]; s += t; a[i] = a[i - 1]; }
    return 0;
}
"#,
            r#"
int main() {
    int i; double x; double a[8];
    #pragma omp parallel private(x)
    {
        #pragma omp single
        {
            #pragma omp for
            for (i = 0; i < 8; i++) a[i] = x;
        }
        #pragma omp atomic
        x = a[0];
        #pragma omp task
        { a[1] = 1.0; }
    }
    return 0;
}
"#,
        ];
        for src in srcs {
            let mir: Vec<Diag> = check_source(src)
                .unwrap()
                .into_iter()
                .filter(|d| !matches!(d.lint, LintId::BarrierDivergence | LintId::TaskDependCycle))
                .collect();
            let ast = check_source_ast(src).unwrap();
            assert_eq!(mir, ast, "backend drift on:\n{src}");
        }
    }

    #[test]
    fn diags_are_position_sorted() {
        let src = r#"
int main() {
    int i; double a[8]; double s;
    #pragma omp parallel
    {
        s = 1.0;
        a[0] = 2.0;
    }
    return 0;
}
"#;
        let ds = check_source(src).unwrap();
        assert_eq!(ds.len(), 2);
        assert!(ds[0].span.line <= ds[1].span.line);
    }
}
