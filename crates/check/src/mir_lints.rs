//! The MIR-driven analyzer: replays the lexical PC001–PC008 detectors
//! from the marker stream of a lowered [`MirFunc`], then layers the
//! flow-sensitive lints on top of the CFG dataflow results:
//!
//! - **PC009** barrier-divergence-deadlock — a barrier (or a construct
//!   with an implicit exit barrier) sits in a block the divergence
//!   analysis proves thread-divergent, even where the lexical PC004
//!   rules stay silent (e.g. after a thread-dependent `break`);
//! - **PC010** task-dependency-cycle — the `depend` clauses of a
//!   region's tasks form a cycle the scheduler can never release.
//!
//! MIR blocks are created in lexical order and every construct leaves
//! paired enter/exit markers, so a linear walk over the flattened
//! statement list — with pair-indexed skips where the AST analyzer
//! declines to enter a construct — reproduces the AST walk verdict for
//! verdict. The shared state machine lives in [`RegionCx`]
//! (`crate::region`); this module only drives it.

use std::collections::HashMap;

use parade_mir::{
    divergent_blocks, AccessEvent, BlockId, CondInfo, Eval, Marker, MirFunc, MirStmt, SiblingKind,
};
use parade_translator::analysis::VarScope;
use parade_translator::ast::{DepKind, DirKind, Span};

use crate::diag::{Diag, LintId};
use crate::region::{RegionCx, UpdateVerdict};

/// Flat statement position: (block index, statement index).
type Pos = (usize, usize);

/// Check one lowered function: the serial walk outside any parallel
/// region, dispatching each region to [`check_region`].
pub(crate) fn check_func(func: &MirFunc, diags: &mut Vec<Diag>) {
    let flat = flatten(func);
    let exits = exit_map(func, &flat);
    let mut i = 0;
    while i < flat.len() {
        let (bi, si) = flat[i];
        let MirStmt::Marker(m) = &func.blocks[bi].stmts[si] else {
            i += 1;
            continue;
        };
        match m {
            Marker::ParallelEnter { dir, class, pair } => {
                crate::check_clause_vars(dir, &func.syms, diags);
                let end = exits[pair];
                match class {
                    None => diags.push(Diag::new(
                        LintId::DirectiveStructure,
                        dir.span,
                        format!(
                            "`{}` directive has no statement to apply to",
                            crate::kind_name(&dir.kind)
                        ),
                    )),
                    Some(class) => {
                        check_region(func, &flat, &exits, i, end, dir, class.clone(), diags);
                    }
                }
                i = end + 1;
            }
            // Tasking constructs are legal at serial scope (a team of one
            // executes them undeferred) — clause check only.
            Marker::TaskEnter { dir, .. } | Marker::Taskwait { dir } => {
                crate::check_clause_vars(dir, &func.syms, diags);
                i += 1;
            }
            // Everything else that carries a directive is orphaned out
            // here; the body still walks (serially) for nested regions.
            Marker::WsEnter { dir, .. }
            | Marker::ProtectEnter { dir, .. }
            | Marker::Barrier { dir } => {
                crate::check_clause_vars(dir, &func.syms, diags);
                diags.push(Diag::new(
                    LintId::DirectiveStructure,
                    dir.span,
                    format!(
                        "`{}` directive outside a parallel region; the runtime \
                         rejects orphaned constructs",
                        crate::kind_name(&dir.kind)
                    ),
                ));
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Flatten a function's statements in lexical (block-creation) order.
fn flatten(func: &MirFunc) -> Vec<Pos> {
    let mut flat = Vec::new();
    for (bi, blk) in func.blocks.iter().enumerate() {
        for si in 0..blk.stmts.len() {
            flat.push((bi, si));
        }
    }
    flat
}

/// Map each construct pair id to the flat index of its exit marker, so a
/// walker that declines a construct can skip past it.
fn exit_map(func: &MirFunc, flat: &[Pos]) -> HashMap<u32, usize> {
    let mut map = HashMap::new();
    for (i, &(bi, si)) in flat.iter().enumerate() {
        if let MirStmt::Marker(m) = &func.blocks[bi].stmts[si] {
            if let Some(pair) = m.exit_pair() {
                map.insert(pair, i);
            }
        }
    }
    map
}

/// One `task`/`target` spawn inside a region, for the PC010 graph.
struct TaskNode {
    span: Span,
    deps: Vec<(DepKind, String)>,
}

/// Replay one parallel region from its marker stream (`start` = the flat
/// index of the `ParallelEnter`, `end` = its `ParallelExit`).
#[allow(clippy::too_many_arguments)]
fn check_region(
    func: &MirFunc,
    flat: &[Pos],
    exits: &HashMap<u32, usize>,
    start: usize,
    end: usize,
    dir: &parade_translator::ast::Directive,
    class: parade_translator::analysis::RegionClassification,
    diags: &mut Vec<Diag>,
) {
    // Region blocks are contiguous (lexical creation order; the lowering
    // cuts fresh blocks at both region boundaries).
    let scope: Vec<BlockId> = (flat[start].0..=flat[end].0)
        .map(|b| BlockId(b as u32))
        .collect();
    // Variables that enter the region with per-thread values seed the
    // divergence analysis. `firstprivate` copies start identical on every
    // thread, so it does *not* taint.
    let entry_class = class.clone();
    let entry_tainted = move |name: &str| {
        matches!(
            entry_class.scope_of(name),
            VarScope::Private | VarScope::LastPrivate | VarScope::Reduction(_)
        )
    };
    let div = divergent_blocks(func, &scope, &entry_tainted);

    let mut cx = RegionCx::new(class, &func.syms, diags, dir.span);
    // Per-statement-list nowait bookkeeping (PC005), pushed at BlockStart.
    let mut pending: Vec<HashMap<String, Span>> = Vec::new();
    // Thread-dependence of each open sequential condition (PC004 depth).
    let mut cond_div: Vec<bool> = Vec::new();
    // Directive span of the work-shared loop being entered (consumed at
    // the WsBody marker, after the bounds evaluation).
    let mut ws_spans: Vec<Span> = Vec::new();
    let mut tasks: Vec<TaskNode> = Vec::new();

    let mut i = start + 1;
    while i < end {
        let (bi, si) = flat[i];
        match &func.blocks[bi].stmts[si] {
            MirStmt::Eval(e) => {
                replay_eval(&mut cx, e);
                i += 1;
            }
            MirStmt::Marker(m) => match m {
                Marker::ParallelEnter { dir: d, pair, .. } => {
                    cx.cur_span = d.span;
                    cx.clause_vars(d);
                    cx.diag_nested_parallel();
                    i = exits[pair] + 1;
                }
                Marker::WsEnter {
                    dir: d,
                    canon,
                    has_body,
                    from_parallel_for,
                    pair,
                } => {
                    cx.cur_span = d.span;
                    if !from_parallel_for {
                        cx.clause_vars(d);
                        if cx.team_in_task(&d.kind) || cx.check_ws_nesting("work-sharing `for`") {
                            i = exits[pair] + 1;
                            continue;
                        }
                    }
                    if !has_body {
                        i = exits[pair] + 1;
                        continue;
                    }
                    if canon.is_none() {
                        cx.diag_non_canonical_ws();
                        i = exits[pair] + 1;
                        continue;
                    }
                    if !d.nowait() && div[bi] {
                        cx.diag_barrier_divergence(
                            "work-sharing `for` with an implicit exit barrier",
                        );
                    }
                    ws_spans.push(d.span);
                    i += 1;
                }
                Marker::WsBody { var } => {
                    cx.mark_written(var);
                    let sp = ws_spans.pop().expect("ws dir span");
                    cx.ws_push(var.clone(), sp);
                    i += 1;
                }
                Marker::WsExit { .. } => {
                    cx.ws_pop_report();
                    i += 1;
                }
                Marker::ProtectEnter {
                    dir: d,
                    atomic_ok,
                    pair,
                } => {
                    cx.cur_span = d.span;
                    cx.clause_vars(d);
                    if cx.team_in_task(&d.kind) {
                        i = exits[pair] + 1;
                        continue;
                    }
                    match &d.kind {
                        DirKind::Single => {
                            if cx.check_ws_nesting("`single`") {
                                i = exits[pair] + 1;
                                continue;
                            }
                            if !d.nowait() && div[bi] {
                                cx.diag_barrier_divergence(
                                    "`single` with an implicit exit barrier",
                                );
                            }
                            cx.protect.push("single");
                        }
                        DirKind::Master => {
                            if cx.check_master_nesting() {
                                i = exits[pair] + 1;
                                continue;
                            }
                            cx.protect.push("master");
                        }
                        DirKind::Critical(_) => cx.protect.push("critical"),
                        DirKind::Atomic => {
                            if !atomic_ok {
                                cx.diag_malformed_atomic();
                            }
                            cx.protect.push("atomic");
                        }
                        _ => unreachable!("ProtectEnter carries a protecting kind"),
                    }
                    i += 1;
                }
                Marker::ProtectExit { .. } => {
                    cx.protect.pop();
                    i += 1;
                }
                Marker::Barrier { dir: d } => {
                    cx.cur_span = d.span;
                    cx.clause_vars(d);
                    if !cx.team_in_task(&d.kind) && !cx.barrier_checks() && div[bi] {
                        cx.diag_barrier_divergence("barrier");
                    }
                    i += 1;
                }
                Marker::TaskEnter { dir: d, .. } => {
                    cx.cur_span = d.span;
                    cx.clause_vars(d);
                    let deps = d.depends();
                    cx.task.push(deps.iter().map(|(_, v)| v.clone()).collect());
                    tasks.push(TaskNode { span: d.span, deps });
                    i += 1;
                }
                Marker::TaskExit { .. } => {
                    cx.task.pop();
                    i += 1;
                }
                Marker::Taskwait { dir: d } => {
                    cx.cur_span = d.span;
                    cx.clause_vars(d);
                    i += 1;
                }
                Marker::CondEnter(info) => {
                    let tainted = match info {
                        CondInfo::Cond { reads, thread_num } => {
                            *thread_num
                                || reads
                                    .iter()
                                    .any(|v| !matches!(cx.scope(v), VarScope::Shared))
                        }
                        CondInfo::ForBounds(Some(vars)) => {
                            !vars.iter().all(|v| matches!(cx.scope(v), VarScope::Shared))
                        }
                        CondInfo::ForBounds(None) => true,
                    };
                    cond_div.push(tainted);
                    cx.divergent += tainted as usize;
                    i += 1;
                }
                Marker::CondExit => {
                    let tainted = cond_div.pop().unwrap_or(false);
                    cx.divergent -= tainted as usize;
                    i += 1;
                }
                Marker::BlockStart => {
                    pending.push(HashMap::new());
                    i += 1;
                }
                Marker::BlockEnd => {
                    pending.pop();
                    i += 1;
                }
                Marker::Sibling(info) => {
                    if let Some(p) = pending.last_mut() {
                        if matches!(info.kind, SiblingKind::Barrier) {
                            // An immediate-child barrier joins the list's
                            // pending nowait writes; the Barrier marker
                            // itself handles placement checks.
                            p.clear();
                        } else {
                            let mut hit = Vec::new();
                            if !p.is_empty() {
                                for v in &info.uses {
                                    if let Some(sp) = p.remove(v) {
                                        hit.push((v.clone(), sp));
                                    }
                                }
                            }
                            let at = info.span.unwrap_or(cx.cur_span);
                            for (v, loop_span) in hit {
                                cx.diag_nowait(&v, loop_span, at);
                            }
                            match &info.kind {
                                SiblingKind::WsNowait { writes, loop_var } => {
                                    let sp = info.span.unwrap_or(cx.cur_span);
                                    let shared: Vec<String> = writes
                                        .iter()
                                        .filter(|v| {
                                            Some(*v) != loop_var.as_ref()
                                                && matches!(cx.scope(v), VarScope::Shared)
                                        })
                                        .cloned()
                                        .collect();
                                    let p = pending.last_mut().expect("pending frame");
                                    for v in shared {
                                        p.insert(v, sp);
                                    }
                                }
                                SiblingKind::WsJoin => {
                                    pending.last_mut().expect("pending frame").clear();
                                }
                                _ => {}
                            }
                        }
                    }
                    i += 1;
                }
                Marker::ParallelExit { .. } => i += 1,
            },
        }
    }
    report_task_cycles(&mut cx, &tasks);
}

/// Replay one linearized evaluation through the shared state machine.
fn replay_eval(cx: &mut RegionCx, e: &Eval) {
    if let Some(sp) = e.span {
        cx.cur_span = sp;
    }
    if let Some(u) = &e.update {
        match cx.update_verdict(&u.target, u.op) {
            UpdateVerdict::Sanctioned => {
                replay_events(cx, &u.operand_events);
                cx.mark_written(&u.target);
                return;
            }
            UpdateVerdict::WrongOp => return,
            UpdateVerdict::NotReduction => {}
        }
    }
    replay_events(cx, &e.events);
}

fn replay_events(cx: &mut RegionCx, events: &[AccessEvent]) {
    for ev in events {
        match ev {
            AccessEvent::ReadVar(n) => cx.read_var(n),
            AccessEvent::WriteVar(n) => cx.write_var(n),
            AccessEvent::ReadIndexed(n, idxs) => cx.read_indexed(n, idxs),
            AccessEvent::WriteIndexed(n, idxs) => cx.write_indexed(n, idxs),
            AccessEvent::LogReadIndexed(n, idxs) => {
                if matches!(cx.scope(n), VarScope::Shared) {
                    cx.log_access(n, idxs, false);
                }
            }
            AccessEvent::MarkWritten(n) => cx.mark_written(n),
        }
    }
}

/// PC010: build the region's task-dependency graph and flag cycles.
///
/// Edge rule (mirrors the runtime scheduler's release order): a task
/// consuming `v` (`in`/`inout`) depends on the *nearest preceding*
/// producer of `v` (`out`/`inout`). A pure `in` with no preceding
/// producer falls forward to the nearest *following* producer — the
/// consumer then waits on a task spawned after it, which is exactly how
/// lexically-crossed `depend` pairs deadlock. Inout chains and diamonds
/// resolve backward only, so they stay clean.
fn report_task_cycles(cx: &mut RegionCx, tasks: &[TaskNode]) {
    if tasks.len() < 2 {
        return;
    }
    let produces = |i: usize, v: &str| tasks[i].deps.iter().any(|(k, v2)| k.writes() && v2 == v);
    let mut edges: Vec<(usize, usize, String)> = Vec::new();
    for (j, t) in tasks.iter().enumerate() {
        for (k, v) in &t.deps {
            if !k.reads() {
                continue;
            }
            let preceding = (0..j).rev().find(|&p| produces(p, v));
            let src = match preceding {
                Some(p) => Some(p),
                None if !produces(j, v) => (j + 1..tasks.len()).find(|&p| produces(p, v)),
                None => None,
            };
            if let Some(s) = src {
                if s != j {
                    edges.push((s, j, v.clone()));
                }
            }
        }
    }
    // Transitive closure → strongly connected components (task counts per
    // region are tiny, so O(n³) is fine).
    let n = tasks.len();
    let mut reach = vec![vec![false; n]; n];
    for &(a, b, _) in &edges {
        reach[a][b] = true;
    }
    for k in 0..n {
        let via = reach[k].clone();
        for row in reach.iter_mut() {
            if row[k] {
                for (dst, &v) in row.iter_mut().zip(&via) {
                    *dst = *dst || v;
                }
            }
        }
    }
    let mut comp = vec![usize::MAX; n];
    for a in 0..n {
        if comp[a] != usize::MAX {
            continue;
        }
        comp[a] = a;
        for b in a + 1..n {
            if reach[a][b] && reach[b][a] {
                comp[b] = a;
            }
        }
    }
    let mut reps: Vec<usize> = comp.to_vec();
    reps.sort_unstable();
    reps.dedup();
    for rep in reps {
        let members: Vec<usize> = (0..n).filter(|&a| comp[a] == rep).collect();
        if members.len() < 2 {
            continue;
        }
        let mut vars: Vec<&str> = edges
            .iter()
            .filter(|(a, b, _)| comp[*a] == rep && comp[*b] == rep)
            .map(|(_, _, v)| v.as_str())
            .collect();
        vars.sort_unstable();
        vars.dedup();
        let vars = vars
            .iter()
            .map(|v| format!("`{v}`"))
            .collect::<Vec<_>>()
            .join(", ");
        let lines = members
            .iter()
            .map(|&a| tasks[a].span.line.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        // `members` is in spawn (lexical) order; diagnose at the first.
        cx.diag_task_cycle(tasks[members[0]].span, &vars, &lines);
    }
}
