//! Wire format of the scheduler protocol.
//!
//! All scheduler traffic shares one reserved point-to-point tag
//! ([`TAG_SCHED`]) with a message-kind byte in the payload; collectives are
//! never concurrent with task-phase pumping, so the scheduler can share the
//! node's communicator. The codec is the same hand-rolled little-endian
//! style as the DSM message layer — no external serialization.

use parade_net::Bytes;

/// Reserved point-to-point tag for all scheduler messages.
pub const TAG_SCHED: u32 = 0x0054_534B; // "TSK"

/// One task: everything needed to execute it on any node.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskDesc {
    /// Schedule-independent id (see `NodeSched::spawn` / `TaskCtx::spawn`).
    pub id: u64,
    /// Id of the spawning task context (root contexts use a per-node
    /// sentinel); completion decrements this parent's outstanding count.
    pub parent: u64,
    /// Node holding this task's dependency/outstanding bookkeeping — the
    /// node it was spawned on. Completions are routed here.
    pub home: u32,
    /// Kernel- or translator-defined function index.
    pub func: u32,
    /// Device node for `target` offload: the task is shipped there and is
    /// never stolen.
    pub pinned: Option<u32>,
    /// Append each dependency's result (as f64 bit patterns, in `deps`
    /// order) to `args` when the task is released — dataflow pipelines.
    pub inject: bool,
    /// Opaque argument words (captured scalars, map ranges, ...).
    pub args: Vec<u64>,
    /// Sibling task ids this task waits on (`depend` clauses, resolved to
    /// ids by the spawner).
    pub deps: Vec<u64>,
    /// DSM release notices (page ids) accumulated from completed
    /// dependencies; the executor applies them before the body runs.
    pub notices: Vec<u64>,
}

/// Scheduler protocol messages.
///
/// `Task`, `StealReq`, `StealReply` and `Complete` are *counted* by the
/// termination detector (they can create or signal work); `Token`, `Done`,
/// `Result` and `Merged` form the termination/merge protocol itself and are
/// not counted.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedMsg {
    /// Ship a ready task to another node's deque.
    Task(TaskDesc),
    /// An idle node asks a victim for work.
    StealReq,
    /// The victim's answer: half its stealable deque, up to the grain
    /// (possibly empty).
    StealReply(Vec<TaskDesc>),
    /// A task finished executing; routed to its home.
    Complete {
        id: u64,
        parent: u64,
        result: Vec<f64>,
        notices: Vec<u64>,
    },
    /// Safra's termination token.
    Token { count: i64, black: bool },
    /// Root → all: the phase terminated; send your results.
    Done,
    /// Node → root: locally-homed results plus spawn/execute counters for
    /// the exactly-once audit.
    Result {
        results: Vec<(u64, Vec<f64>)>,
        spawned: u64,
        executed: u64,
    },
    /// Root → all: the id-sorted merge of every task's result.
    Merged(Vec<(u64, Vec<f64>)>),
}

const K_TASK: u8 = 1;
const K_STEAL_REQ: u8 = 2;
const K_STEAL_REPLY: u8 = 3;
const K_COMPLETE: u8 = 4;
const K_TOKEN: u8 = 5;
const K_DONE: u8 = 6;
const K_RESULT: u8 = 7;
const K_MERGED: u8 = 8;

struct Wr(Vec<u8>);

impl Wr {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64s(&mut self, vs: &[u64]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.u64(v);
        }
    }
    fn f64s(&mut self, vs: &[f64]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.u64(v.to_bits());
        }
    }
    fn desc(&mut self, d: &TaskDesc) {
        self.u64(d.id);
        self.u64(d.parent);
        self.u32(d.home);
        self.u32(d.func);
        match d.pinned {
            Some(p) => {
                self.u8(1);
                self.u32(p);
            }
            None => self.u8(0),
        }
        self.u8(d.inject as u8);
        self.u64s(&d.args);
        self.u64s(&d.deps);
        self.u64s(&d.notices);
    }
    fn results(&mut self, rs: &[(u64, Vec<f64>)]) {
        self.u32(rs.len() as u32);
        for (id, vals) in rs {
            self.u64(*id);
            self.f64s(vals);
        }
    }
}

struct Rd<'a> {
    b: &'a [u8],
    p: usize,
}

impl<'a> Rd<'a> {
    fn u8(&mut self) -> u8 {
        let v = self.b[self.p];
        self.p += 1;
        v
    }
    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.b[self.p..self.p + 4].try_into().unwrap());
        self.p += 4;
        v
    }
    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.b[self.p..self.p + 8].try_into().unwrap());
        self.p += 8;
        v
    }
    fn u64s(&mut self) -> Vec<u64> {
        let n = self.u32() as usize;
        (0..n).map(|_| self.u64()).collect()
    }
    fn f64s(&mut self) -> Vec<f64> {
        let n = self.u32() as usize;
        (0..n).map(|_| f64::from_bits(self.u64())).collect()
    }
    fn desc(&mut self) -> TaskDesc {
        let id = self.u64();
        let parent = self.u64();
        let home = self.u32();
        let func = self.u32();
        let pinned = if self.u8() == 1 {
            Some(self.u32())
        } else {
            None
        };
        let inject = self.u8() == 1;
        TaskDesc {
            id,
            parent,
            home,
            func,
            pinned,
            inject,
            args: self.u64s(),
            deps: self.u64s(),
            notices: self.u64s(),
        }
    }
    fn results(&mut self) -> Vec<(u64, Vec<f64>)> {
        let n = self.u32() as usize;
        (0..n).map(|_| (self.u64(), self.f64s())).collect()
    }
}

impl SchedMsg {
    /// True for messages the termination detector must count.
    pub fn counted(&self) -> bool {
        matches!(
            self,
            SchedMsg::Task(_)
                | SchedMsg::StealReq
                | SchedMsg::StealReply(_)
                | SchedMsg::Complete { .. }
        )
    }

    pub fn encode(&self) -> Bytes {
        let mut w = Wr(Vec::with_capacity(32));
        match self {
            SchedMsg::Task(d) => {
                w.u8(K_TASK);
                w.desc(d);
            }
            SchedMsg::StealReq => w.u8(K_STEAL_REQ),
            SchedMsg::StealReply(ds) => {
                w.u8(K_STEAL_REPLY);
                w.u32(ds.len() as u32);
                for d in ds {
                    w.desc(d);
                }
            }
            SchedMsg::Complete {
                id,
                parent,
                result,
                notices,
            } => {
                w.u8(K_COMPLETE);
                w.u64(*id);
                w.u64(*parent);
                w.f64s(result);
                w.u64s(notices);
            }
            SchedMsg::Token { count, black } => {
                w.u8(K_TOKEN);
                w.u64(*count as u64);
                w.u8(*black as u8);
            }
            SchedMsg::Done => w.u8(K_DONE),
            SchedMsg::Result {
                results,
                spawned,
                executed,
            } => {
                w.u8(K_RESULT);
                w.results(results);
                w.u64(*spawned);
                w.u64(*executed);
            }
            SchedMsg::Merged(rs) => {
                w.u8(K_MERGED);
                w.results(rs);
            }
        }
        Bytes::from(w.0)
    }

    /// Decode a scheduler message. Panics on malformed input: scheduler
    /// traffic only crosses the in-process fabric, whose reliable channel
    /// already guarantees integrity — a short payload here is a bug, not a
    /// wire fault.
    pub fn decode(b: &[u8]) -> SchedMsg {
        let mut r = Rd { b, p: 0 };
        let msg = match r.u8() {
            K_TASK => SchedMsg::Task(r.desc()),
            K_STEAL_REQ => SchedMsg::StealReq,
            K_STEAL_REPLY => {
                let n = r.u32() as usize;
                SchedMsg::StealReply((0..n).map(|_| r.desc()).collect())
            }
            K_COMPLETE => SchedMsg::Complete {
                id: r.u64(),
                parent: r.u64(),
                result: r.f64s(),
                notices: r.u64s(),
            },
            K_TOKEN => SchedMsg::Token {
                count: r.u64() as i64,
                black: r.u8() == 1,
            },
            K_DONE => SchedMsg::Done,
            K_RESULT => SchedMsg::Result {
                results: r.results(),
                spawned: r.u64(),
                executed: r.u64(),
            },
            K_MERGED => SchedMsg::Merged(r.results()),
            k => panic!("unknown scheduler message kind {k}"),
        };
        assert_eq!(r.p, b.len(), "trailing bytes in scheduler message");
        msg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc() -> TaskDesc {
        TaskDesc {
            id: 0x0102_0304_0506_0708,
            parent: 7,
            home: 3,
            func: 2,
            pinned: Some(5),
            inject: true,
            args: vec![1, u64::MAX, 0],
            deps: vec![9, 11],
            notices: vec![42],
        }
    }

    #[test]
    fn roundtrip_all_kinds() {
        let msgs = vec![
            SchedMsg::Task(desc()),
            SchedMsg::StealReq,
            SchedMsg::StealReply(vec![desc(), desc()]),
            SchedMsg::StealReply(vec![]),
            SchedMsg::Complete {
                id: 3,
                parent: 1,
                result: vec![1.5, -0.0, f64::MAX],
                notices: vec![8, 9],
            },
            SchedMsg::Token {
                count: -3,
                black: true,
            },
            SchedMsg::Done,
            SchedMsg::Result {
                results: vec![(1, vec![2.0]), (5, vec![])],
                spawned: 2,
                executed: 2,
            },
            SchedMsg::Merged(vec![(1, vec![0.25])]),
        ];
        for m in msgs {
            let b = m.encode();
            assert_eq!(SchedMsg::decode(&b), m);
        }
    }

    #[test]
    fn counted_split_matches_termination_protocol() {
        assert!(SchedMsg::Task(desc()).counted());
        assert!(SchedMsg::StealReq.counted());
        assert!(SchedMsg::StealReply(vec![]).counted());
        assert!(SchedMsg::Complete {
            id: 0,
            parent: 0,
            result: vec![],
            notices: vec![]
        }
        .counted());
        assert!(!SchedMsg::Token {
            count: 0,
            black: false
        }
        .counted());
        assert!(!SchedMsg::Done.counted());
        assert!(!SchedMsg::Merged(vec![]).counted());
    }
}
