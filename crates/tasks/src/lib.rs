//! # parade-tasks — distributed OpenMP-style tasking
//!
//! A task graph (spawn / taskwait / `depend(in/out)` dependencies) executed
//! across the simulated cluster with **per-node deques and randomized work
//! stealing** over the parade-mpi point-to-point layer, following "The
//! OpenMP Cluster Programming Model" and "Experiences with task-based
//! programming using cluster nodes as OpenMP devices": every SMP node runs
//! one scheduler, idle nodes send steal requests to seeded random victims,
//! and quiescence is detected with Safra's token algorithm so a task phase
//! terminates exactly when every spawned task has executed exactly once.
//!
//! Determinism contract: task **ids are schedule-independent** (a pure
//! function of the spawning node and spawn ordinal), task bodies are pure
//! functions of their descriptor, and the phase result is the id-sorted
//! merge of all task results broadcast from the root — so the merged result
//! is bit-identical across steal schedules, seeds, victim orders, and chaos
//! fault schedules (the PR 3 reliable channel delivers scheduler messages
//! exactly once per link).
//!
//! `target`-style offload rides the same machinery: a *pinned* task is
//! shipped to its device node, never stolen, and synchronized individually
//! (`target_sync`); its data motion is carried by DSM release notices that
//! completions propagate along dependency edges (the [`TaskExecutor`]
//! `release`/`acquire` hooks — the cluster-as-device mapping of
//! `map(to/from)` clauses onto page invalidations lives in parade-core).

mod sched;
mod wire;

pub use sched::{run_to_merge, NodeSched, SchedConfig, StealStrategy, Step, TaskCtx, TaskExecutor};
pub use wire::{SchedMsg, TaskDesc, TAG_SCHED};
