//! The per-node task scheduler: deque, work stealing, dependency tables,
//! and Safra's token termination detection.
//!
//! One [`NodeSched`] exists per node per task phase, driven by that node's
//! lead thread. It is a *steppable state machine*: [`NodeSched::step`]
//! drains pending scheduler messages, executes at most one ready task, and
//! performs idle-time protocol actions (steal requests, token forwarding).
//! A live cluster pumps it with a blocking receive when idle
//! ([`run_to_merge`]); benchmarks drive many schedulers round-robin from a
//! single thread, which never blocks and is therefore fully deterministic
//! in virtual time.
//!
//! ## Deque layout and stealing
//!
//! Ready tasks live in one `VecDeque` per node (compute threads of a node
//! form one OpenMP team, so the node is the worker). The owner pops from
//! the back (LIFO — depth-first, cache-friendly); steal victims serve from
//! the front (FIFO — oldest, largest-grained work first). An idle node
//! under [`StealStrategy::Random`] sends a steal request to a seeded
//! random victim and goes passive after `victim_fanout` consecutive empty
//! replies; any arriving task or non-empty reply reactivates it.
//! [`StealStrategy::Flat`] instead ships every spawn round-robin at spawn
//! time and never steals — the deterministic baseline the benchmarks gate.
//!
//! ## Termination
//!
//! Safra's algorithm over the node ring: every *counted* message
//! ([`SchedMsg::counted`]) bumps the sender's message balance and blackens
//! the receiver; a node is passive when its root body is done, its deque
//! is empty, nothing is executing, and its stealing is exhausted — no
//! request outstanding and no victims left to try. The last clause is
//! load-bearing: Safra's proof assumes passive processes never *initiate*
//! messages, so a node that still steals is active and holds the token
//! (tasks held on unmet dependencies do not block passivity — their
//! release arrives via a counted `Complete`). The root launches a white token when passive; each node
//! forwards it only while passive, adding its balance and its color, and
//! whitens after forwarding. A white token returning to a white root with
//! a zero global balance proves quiescence: the root then broadcasts
//! `Done`, gathers per-node results and spawn/execute counters, audits
//! exactly-once execution (`sum(spawned) == sum(executed) == results`,
//! ids unique), and broadcasts the id-sorted merge.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parade_mpi::Communicator;
use parade_net::VClock;
use parade_trace as trace;
use parade_trace::EventKind;

use crate::wire::{SchedMsg, TaskDesc, TAG_SCHED};

/// How spawned tasks reach other nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealStrategy {
    /// Ship each spawn round-robin at spawn time; no stealing. Fully
    /// deterministic placement — the baseline for gated benchmarks and the
    /// flat-vs-stealing bit-identity smoke.
    Flat,
    /// Spawns stay on the spawning node; idle nodes steal from seeded
    /// random victims.
    Random,
}

/// Scheduler knobs, configured per cluster (`ClusterConfig::task_scheduler`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedConfig {
    pub strategy: StealStrategy,
    /// Consecutive empty steal replies before a thief goes passive.
    pub victim_fanout: usize,
    /// Max tasks handed over per steal reply.
    pub grain: usize,
    /// Seed for victim selection (per-node streams are derived from it).
    pub seed: u64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            strategy: StealStrategy::Random,
            victim_fanout: 3,
            grain: 4,
            seed: 0x5EED_7A5C,
        }
    }
}

/// Handed to an executing task body; collects child spawns, which the
/// scheduler processes after the body returns (children are homed on the
/// executing node).
pub struct TaskCtx {
    parent: u64,
    ord: u64,
    pub(crate) spawned: Vec<TaskDesc>,
}

impl TaskCtx {
    /// Spawn a child task. Child ids are a pure function of the parent id
    /// and the spawn ordinal, so they are schedule-independent. At most
    /// 32767 children per task keep ids collision-free.
    pub fn spawn(&mut self, func: u32, args: Vec<u64>) -> u64 {
        self.spawn_with_deps(func, args, Vec::new(), false)
    }

    /// Spawn a child with dependencies on sibling ids; `inject` appends
    /// each dependency's result to `args` at release.
    pub fn spawn_with_deps(
        &mut self,
        func: u32,
        args: Vec<u64>,
        deps: Vec<u64>,
        inject: bool,
    ) -> u64 {
        assert!(self.ord < 32_767, "too many children for one task");
        let id = child_id(self.parent, self.ord);
        self.ord += 1;
        self.spawned.push(TaskDesc {
            id,
            parent: self.parent,
            home: 0, // stamped by the scheduler when processed
            func,
            pinned: None,
            inject,
            args,
            deps,
            notices: Vec::new(),
        });
        id
    }
}

/// Child `ord` of task `parent`: even, disjoint from root ids (odd).
pub fn child_id(parent: u64, ord: u64) -> u64 {
    parent.wrapping_mul(65_536).wrapping_add(2 * (ord + 1))
}

/// Supplies task bodies and the DSM coherence hooks.
///
/// `release` runs after each body (a flush at the task's completion — an
/// HLRC release point) and returns the page notices to propagate;
/// `acquire` applies notices (invalidations) before a dependent body runs
/// and when completions reach a waiting home. The default no-op hooks fit
/// task graphs whose data rides entirely in descriptors and results.
pub trait TaskExecutor {
    fn exec(&mut self, desc: &TaskDesc, tctx: &mut TaskCtx, clock: &mut VClock) -> Vec<f64>;

    fn release(&mut self, _clock: &mut VClock) -> Vec<u64> {
        Vec::new()
    }

    fn acquire(&mut self, _notices: &[u64], _clock: &mut VClock) {}
}

impl<F> TaskExecutor for F
where
    F: FnMut(&TaskDesc, &mut TaskCtx, &mut VClock) -> Vec<f64>,
{
    fn exec(&mut self, desc: &TaskDesc, tctx: &mut TaskCtx, clock: &mut VClock) -> Vec<f64> {
        self(desc, tctx, clock)
    }
}

/// Outcome of one [`NodeSched::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Progress was made (message handled, task executed, protocol action).
    Worked,
    /// Nothing to do until a message arrives.
    Idle,
    /// The merged result is available ([`NodeSched::take_merged`]).
    Finished,
}

/// A held task waiting on dependencies.
struct Held {
    desc: TaskDesc,
    unmet: usize,
}

enum Phase {
    /// Executing the task graph.
    Working,
    /// Root only: `Done` broadcast, gathering `Result` messages.
    Gathering,
    /// Non-root: `Result` sent, waiting for `Merged`.
    AwaitMerge,
}

/// One node's scheduler for one task phase.
pub struct NodeSched {
    comm: Arc<Communicator>,
    node: usize,
    nnodes: usize,
    cfg: SchedConfig,
    deque: VecDeque<TaskDesc>,
    held: HashMap<u64, Held>,
    /// dep id -> held task ids waiting on it.
    dependents: HashMap<u64, Vec<u64>>,
    /// Locally-homed completed tasks: id -> (result, notices).
    completed: HashMap<u64, (Vec<f64>, Vec<u64>)>,
    /// parent id -> incomplete children homed here.
    outstanding: HashMap<u64, u64>,
    /// Results of tasks homed here, in completion order.
    results: Vec<(u64, Vec<f64>)>,
    root_ord: u64,
    flat_ord: u64,
    spawned: u64,
    executed: u64,
    /// Safra: counted messages sent minus received.
    balance: i64,
    black: bool,
    body_done: bool,
    /// Held token, if any (count, black).
    token: Option<(i64, bool)>,
    /// Root: a probe is circulating.
    probing: bool,
    steal_misses: usize,
    steal_outstanding: bool,
    rng: u64,
    phase: Phase,
    gathered: Vec<(IdResults, u64, u64)>,
    merged: Option<IdResults>,
}

/// Id-tagged task results, as gathered per node and merged id-sorted.
type IdResults = Vec<(u64, Vec<f64>)>;

impl NodeSched {
    pub fn new(comm: Arc<Communicator>, cfg: SchedConfig) -> Self {
        let node = comm.rank();
        let nnodes = comm.size();
        NodeSched {
            comm,
            node,
            nnodes,
            cfg,
            deque: VecDeque::new(),
            held: HashMap::new(),
            dependents: HashMap::new(),
            completed: HashMap::new(),
            outstanding: HashMap::new(),
            results: Vec::new(),
            root_ord: 0,
            flat_ord: 0,
            spawned: 0,
            executed: 0,
            balance: 0,
            black: false,
            body_done: false,
            token: None,
            probing: false,
            steal_misses: 0,
            steal_outstanding: false,
            rng: splitmix(cfg.seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            phase: Phase::Working,
            gathered: Vec::new(),
            merged: None,
        }
    }

    pub fn node(&self) -> usize {
        self.node
    }

    /// Root-context parent sentinel for this node (no collision with task
    /// ids, which stay far below `u64::MAX`).
    fn root_parent(&self) -> u64 {
        u64::MAX - self.node as u64
    }

    // ---- root-context spawning ------------------------------------------

    /// Spawn a root task on this node. Root ids encode (node, ordinal), so
    /// they are unique and schedule-independent: `2*(ord*nnodes+node)+1`.
    pub fn spawn(&mut self, func: u32, args: Vec<u64>, clock: &mut VClock) -> u64 {
        self.spawn_full(func, args, Vec::new(), false, None, Vec::new(), clock)
    }

    /// Spawn a root task with dependencies on previously spawned root task
    /// ids of this node.
    pub fn spawn_with_deps(
        &mut self,
        func: u32,
        args: Vec<u64>,
        deps: Vec<u64>,
        inject: bool,
        clock: &mut VClock,
    ) -> u64 {
        self.spawn_full(func, args, deps, inject, None, Vec::new(), clock)
    }

    /// Spawn a `target` task pinned to `device`: shipped there, never
    /// stolen. Synchronize on it with [`NodeSched::target_sync`].
    pub fn target(&mut self, device: usize, func: u32, args: Vec<u64>, clock: &mut VClock) -> u64 {
        self.target_with_notices(device, func, args, Vec::new(), clock)
    }

    /// `target` with `map(to)` write notices: the requester's pre-offload
    /// flush produced `notices`, which the device applies (invalidating its
    /// stale copies) before the body runs.
    pub fn target_with_notices(
        &mut self,
        device: usize,
        func: u32,
        args: Vec<u64>,
        notices: Vec<u64>,
        clock: &mut VClock,
    ) -> u64 {
        assert!(device < self.nnodes, "no such device node: {device}");
        self.spawn_full(
            func,
            args,
            Vec::new(),
            false,
            Some(device as u32),
            notices,
            clock,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn spawn_full(
        &mut self,
        func: u32,
        args: Vec<u64>,
        deps: Vec<u64>,
        inject: bool,
        pinned: Option<u32>,
        notices: Vec<u64>,
        clock: &mut VClock,
    ) -> u64 {
        let id = 2 * (self.root_ord * self.nnodes as u64 + self.node as u64) + 1;
        self.root_ord += 1;
        let desc = TaskDesc {
            id,
            parent: self.root_parent(),
            home: self.node as u32,
            func,
            pinned,
            inject,
            args,
            deps,
            notices,
        };
        self.process_spawn(desc, clock);
        id
    }

    /// Register a freshly spawned task homed here: resolve its
    /// dependencies and either hold it or route it.
    fn process_spawn(&mut self, mut desc: TaskDesc, clock: &mut VClock) {
        desc.home = self.node as u32;
        self.spawned += 1;
        *self.outstanding.entry(desc.parent).or_insert(0) += 1;
        if trace::enabled() {
            trace::instant(EventKind::TaskSpawn, desc.id, clock.now());
        }
        let unmet = desc
            .deps
            .iter()
            .filter(|d| !self.completed.contains_key(d))
            .count();
        if unmet > 0 {
            for &d in desc.deps.iter() {
                if !self.completed.contains_key(&d) {
                    self.dependents.entry(d).or_default().push(desc.id);
                }
            }
            self.held.insert(desc.id, Held { desc, unmet });
        } else {
            self.make_ready(desc, clock);
        }
    }

    /// All dependencies of `desc` are complete: fold in their notices (and
    /// results, if injecting) and route the task.
    fn make_ready(&mut self, mut desc: TaskDesc, clock: &mut VClock) {
        for d in desc.deps.clone() {
            let (result, notices) = self
                .completed
                .get(&d)
                .expect("make_ready requires completed deps");
            desc.notices.extend_from_slice(notices);
            if desc.inject {
                desc.args.extend(result.iter().map(|v| v.to_bits()));
            }
        }
        self.route(desc, clock);
    }

    fn route(&mut self, desc: TaskDesc, clock: &mut VClock) {
        if let Some(p) = desc.pinned {
            if p as usize != self.node {
                self.send_counted(p as usize, &SchedMsg::Task(desc), clock);
                return;
            }
            self.deque.push_back(desc);
            return;
        }
        match self.cfg.strategy {
            StealStrategy::Flat => {
                let dst = (self.node as u64 + self.flat_ord) % self.nnodes as u64;
                self.flat_ord += 1;
                if dst as usize == self.node {
                    self.deque.push_back(desc);
                } else {
                    self.send_counted(dst as usize, &SchedMsg::Task(desc), clock);
                }
            }
            StealStrategy::Random => self.deque.push_back(desc),
        }
    }

    // ---- message plumbing ------------------------------------------------

    fn send_counted(&mut self, dst: usize, msg: &SchedMsg, clock: &mut VClock) {
        debug_assert!(msg.counted());
        self.balance += 1;
        self.comm.send_bytes(dst, TAG_SCHED, msg.encode(), clock);
    }

    fn send_uncounted(&self, dst: usize, msg: &SchedMsg, clock: &mut VClock) {
        debug_assert!(!msg.counted());
        self.comm.send_bytes(dst, TAG_SCHED, msg.encode(), clock);
    }

    fn handle<E: TaskExecutor>(
        &mut self,
        src: usize,
        bytes: &[u8],
        ex: &mut E,
        clock: &mut VClock,
    ) {
        let msg = SchedMsg::decode(bytes);
        if msg.counted() {
            self.balance -= 1;
            self.black = true;
        }
        match msg {
            SchedMsg::Task(desc) => {
                self.steal_misses = 0; // work arrived: reactivate stealing
                self.deque.push_back(desc);
            }
            SchedMsg::StealReq => {
                let batch = self.steal_batch();
                if trace::enabled() && !batch.is_empty() {
                    trace::instant(EventKind::TaskSteal, batch.len() as u64, clock.now());
                }
                self.send_counted(src, &SchedMsg::StealReply(batch), clock);
            }
            SchedMsg::StealReply(tasks) => {
                self.steal_outstanding = false;
                if tasks.is_empty() {
                    self.steal_misses += 1;
                } else {
                    self.steal_misses = 0;
                    self.deque.extend(tasks);
                }
            }
            SchedMsg::Complete {
                id,
                parent,
                result,
                notices,
            } => self.on_complete(id, parent, result, notices, ex, clock),
            SchedMsg::Token { count, black } => self.on_token(count, black, clock),
            SchedMsg::Done => {
                debug_assert_ne!(self.node, 0);
                let results = std::mem::take(&mut self.results);
                self.send_uncounted(
                    0,
                    &SchedMsg::Result {
                        results,
                        spawned: self.spawned,
                        executed: self.executed,
                    },
                    clock,
                );
                self.phase = Phase::AwaitMerge;
            }
            SchedMsg::Result {
                results,
                spawned,
                executed,
            } => {
                debug_assert_eq!(self.node, 0);
                self.gathered.push((results, spawned, executed));
                // `begin_done` already pushed the root's own contribution.
                if self.gathered.len() == self.nnodes {
                    self.finish_merge(clock);
                }
            }
            SchedMsg::Merged(rs) => self.merged = Some(rs),
        }
    }

    /// Victim side of a steal: up to `grain` tasks from the *front* of the
    /// deque (oldest first), at most half the stealable entries. Pinned
    /// tasks never move off their device.
    fn steal_batch(&mut self) -> Vec<TaskDesc> {
        let avail = self.deque.iter().filter(|d| d.pinned.is_none()).count();
        let want = (avail / 2).max(usize::from(avail > 0)).min(self.cfg.grain);
        let mut batch = Vec::with_capacity(want);
        let mut i = 0;
        while batch.len() < want && i < self.deque.len() {
            if self.deque[i].pinned.is_none() {
                batch.push(self.deque.remove(i).expect("index in range"));
            } else {
                i += 1;
            }
        }
        batch
    }

    fn on_complete<E: TaskExecutor>(
        &mut self,
        id: u64,
        parent: u64,
        result: Vec<f64>,
        notices: Vec<u64>,
        ex: &mut E,
        clock: &mut VClock,
    ) {
        // An HLRC acquire at the waiting home: invalidate the completer's
        // released pages so post-wait reads refetch fresh copies.
        if !notices.is_empty() {
            ex.acquire(&notices, clock);
        }
        self.results.push((id, result.clone()));
        self.completed.insert(id, (result, notices));
        let o = self
            .outstanding
            .get_mut(&parent)
            .expect("completion for unknown parent");
        *o -= 1;
        if let Some(waiters) = self.dependents.remove(&id) {
            for w in waiters {
                let h = self.held.get_mut(&w).expect("dependent must be held");
                h.unmet -= 1;
                if h.unmet == 0 {
                    let h = self.held.remove(&w).expect("just found");
                    self.make_ready(h.desc, clock);
                }
            }
        }
    }

    // ---- execution -------------------------------------------------------

    fn pop_ready(&mut self) -> Option<TaskDesc> {
        self.deque.pop_back()
    }

    fn run_one<E: TaskExecutor>(&mut self, desc: TaskDesc, ex: &mut E, clock: &mut VClock) {
        if trace::enabled() {
            trace::begin_arg(EventKind::TaskExec, desc.id, clock.now());
        }
        // Acquire the dependencies' release notices before the body reads.
        if !desc.notices.is_empty() {
            ex.acquire(&desc.notices, clock);
        }
        let mut tctx = TaskCtx {
            parent: desc.id,
            ord: 0,
            spawned: Vec::new(),
        };
        let result = ex.exec(&desc, &mut tctx, clock);
        // Children are homed on the executing node.
        for child in std::mem::take(&mut tctx.spawned) {
            self.process_spawn(child, clock);
        }
        // Completion is a release point: flush, and propagate this task's
        // notices (its own release plus everything it inherited).
        let mut notices = ex.release(clock);
        notices.extend_from_slice(&desc.notices);
        notices.sort_unstable();
        notices.dedup();
        self.executed += 1;
        if trace::enabled() {
            trace::end(EventKind::TaskExec, clock.now());
        }
        let complete = SchedMsg::Complete {
            id: desc.id,
            parent: desc.parent,
            result,
            notices,
        };
        if desc.home as usize == self.node {
            if let SchedMsg::Complete {
                id,
                parent,
                result,
                notices,
            } = complete
            {
                self.on_complete(id, parent, result, notices, ex, clock);
            }
        } else {
            self.send_counted(desc.home as usize, &complete, clock);
        }
    }

    // ---- termination (Safra's token) ------------------------------------

    /// Safra-passive: may this node forward (or launch) the token?
    ///
    /// The algorithm's soundness rests on passive processes never
    /// *initiating* messages. A node that is still stealing — a request
    /// outstanding, or victims left to try — initiates counted messages,
    /// so it must count as ACTIVE and hold the token until stealing is
    /// exhausted. Treating a stealing node as passive once let a probe
    /// complete with a `StealReq` still in flight: termination was
    /// declared, the straggler (or its reply) outlived the phase in the
    /// receiver's mailbox, and the *next* phase's fresh scheduler
    /// consumed it — a permanent −1 in its message balance that no probe
    /// could ever zero. The ring then circulated tokens forever (live
    /// lock, all nodes spinning, no progress).
    fn passive(&self) -> bool {
        self.body_done && self.deque.is_empty() && !self.steal_outstanding && !self.can_steal()
    }

    /// Stealing still available: Random strategy, victims exist, and the
    /// miss budget is not exhausted. (Arriving work resets the misses, so
    /// a node can become active again — which is fine: the message that
    /// reactivated it blackened it.)
    fn can_steal(&self) -> bool {
        self.cfg.strategy == StealStrategy::Random
            && self.nnodes > 1
            && self.steal_misses < self.cfg.victim_fanout
    }

    fn on_token(&mut self, count: i64, black: bool, _clock: &mut VClock) {
        if self.node == 0 {
            self.probing = false;
            if !black && !self.black && count + self.balance == 0 {
                self.token = Some((0, false)); // mark: terminated, begin Done
            }
            self.black = false;
            if self.token.is_none() {
                // Failed probe; a new one launches from idle_actions once
                // the root is passive again.
                return;
            }
            // Termination path: handled in idle_actions via begin_done.
            self.probing = true; // block further probes
        } else {
            self.token = Some((count, black));
        }
    }

    /// Idle-time protocol actions; returns true if anything was done.
    fn idle_actions(&mut self, clock: &mut VClock) -> bool {
        if !matches!(self.phase, Phase::Working) || !self.body_done || !self.deque.is_empty() {
            return false;
        }
        // Stealing is an ACTIVE action (see `passive`): it comes first,
        // and while a request is outstanding the node holds any token it
        // received rather than forwarding it.
        if !self.steal_outstanding && self.can_steal() {
            let victim = self.pick_victim();
            self.steal_outstanding = true;
            self.send_counted(victim, &SchedMsg::StealReq, clock);
            return true;
        }
        if !self.passive() {
            return false;
        }
        if self.node == 0 {
            if let Some((_, _)) = self.token {
                // Successful probe stored by on_token: terminate.
                self.token = None;
                self.begin_done(clock);
                return true;
            }
            if !self.probing {
                self.probing = true;
                if self.nnodes == 1 {
                    debug_assert_eq!(self.balance, 0);
                    self.begin_done(clock);
                } else {
                    self.send_uncounted(
                        1,
                        &SchedMsg::Token {
                            count: 0,
                            black: false,
                        },
                        clock,
                    );
                }
                return true;
            }
        } else if let Some((count, black)) = self.token.take() {
            let next = (self.node + 1) % self.nnodes;
            self.send_uncounted(
                next,
                &SchedMsg::Token {
                    count: count + self.balance,
                    black: black || self.black,
                },
                clock,
            );
            self.black = false;
            return true;
        }
        false
    }

    fn pick_victim(&mut self) -> usize {
        self.rng = splitmix(self.rng);
        let v = (self.rng % (self.nnodes as u64 - 1)) as usize;
        if v >= self.node {
            v + 1
        } else {
            v
        }
    }

    /// Root: quiescence proven. Broadcast `Done`, fold in the root's own
    /// contribution, then wait for everyone's `Result`.
    fn begin_done(&mut self, clock: &mut VClock) {
        debug_assert_eq!(self.node, 0);
        for dst in 1..self.nnodes {
            self.send_uncounted(dst, &SchedMsg::Done, clock);
        }
        let own = std::mem::take(&mut self.results);
        self.gathered.push((own, self.spawned, self.executed));
        self.phase = Phase::Gathering;
        if self.nnodes == 1 {
            self.finish_merge(clock);
        }
    }

    /// Root: all `Result`s in. Audit exactly-once execution and broadcast
    /// the id-sorted merge.
    fn finish_merge(&mut self, clock: &mut VClock) {
        let mut all: Vec<(u64, Vec<f64>)> = Vec::new();
        let mut spawned = 0u64;
        let mut executed = 0u64;
        for (rs, s, e) in self.gathered.drain(..) {
            all.extend(rs);
            spawned += s;
            executed += e;
        }
        assert_eq!(
            spawned,
            all.len() as u64,
            "task lost or duplicated: {spawned} spawned vs {} results",
            all.len()
        );
        assert_eq!(
            executed,
            all.len() as u64,
            "execution count mismatch: {executed} executed vs {} results",
            all.len()
        );
        all.sort_by_key(|(id, _)| *id);
        for w in all.windows(2) {
            assert_ne!(w[0].0, w[1].0, "task id {} executed twice", w[0].0);
        }
        for dst in 1..self.nnodes {
            self.send_uncounted(dst, &SchedMsg::Merged(all.clone()), clock);
        }
        self.merged = Some(all);
    }

    // ---- driving ---------------------------------------------------------

    /// The root body of this node is done spawning; stealing and
    /// termination detection may begin.
    pub fn body_done(&mut self) {
        self.body_done = true;
    }

    /// One scheduler step: drain pending messages, run at most one ready
    /// task, else perform an idle protocol action.
    pub fn step<E: TaskExecutor>(&mut self, ex: &mut E, clock: &mut VClock) -> Step {
        if self.merged.is_some() {
            return Step::Finished;
        }
        let mut worked = false;
        while let Some((src, bytes)) = self.comm.try_recv_bytes(TAG_SCHED, clock) {
            self.handle(src, &bytes, ex, clock);
            worked = true;
        }
        if self.merged.is_some() {
            return Step::Finished;
        }
        if let Some(desc) = self.pop_ready() {
            self.run_one(desc, ex, clock);
            return Step::Worked;
        }
        if self.idle_actions(clock) {
            worked = true;
        }
        if self.merged.is_some() {
            Step::Finished
        } else if worked {
            Step::Worked
        } else {
            Step::Idle
        }
    }

    /// Pump until every child of this node's root context has completed.
    /// Handles messages and executes locally queued tasks while waiting
    /// (the waited-on tasks may be sitting in this node's own deque).
    pub fn taskwait<E: TaskExecutor>(&mut self, ex: &mut E, clock: &mut VClock) {
        let rid = self.root_parent();
        self.wait_until(ex, clock, |s| {
            s.outstanding.get(&rid).copied().unwrap_or(0) == 0
        });
    }

    /// Pump until the pinned task `id` (spawned here) has completed —
    /// the synchronous `target` construct.
    pub fn target_sync<E: TaskExecutor>(&mut self, id: u64, ex: &mut E, clock: &mut VClock) {
        self.wait_until(ex, clock, |s| s.completed.contains_key(&id));
    }

    fn wait_until<E: TaskExecutor>(
        &mut self,
        ex: &mut E,
        clock: &mut VClock,
        done: impl Fn(&NodeSched) -> bool,
    ) {
        loop {
            if done(self) {
                return;
            }
            while let Some((src, bytes)) = self.comm.try_recv_bytes(TAG_SCHED, clock) {
                self.handle(src, &bytes, ex, clock);
            }
            if done(self) {
                return;
            }
            if let Some(desc) = self.pop_ready() {
                self.run_one(desc, ex, clock);
                continue;
            }
            // Nothing local: block for the next scheduler message.
            let (src, bytes) = self.comm.recv_bytes_any(TAG_SCHED, clock);
            self.handle(src, &bytes, ex, clock);
        }
    }

    /// The merged phase result, once [`Step::Finished`].
    pub fn take_merged(&mut self) -> Option<Vec<(u64, Vec<f64>)>> {
        self.merged.take()
    }

    /// Tasks executed on this node (diagnostics).
    pub fn executed_here(&self) -> u64 {
        self.executed
    }
}

/// Live-mode driver: declare the root body done, then pump (blocking on
/// the fabric when idle) until the merged result arrives. Every node of
/// the phase must call this; all nodes return the identical id-sorted
/// result vector.
pub fn run_to_merge<E: TaskExecutor>(
    sched: &mut NodeSched,
    ex: &mut E,
    clock: &mut VClock,
) -> Vec<(u64, Vec<f64>)> {
    sched.body_done();
    loop {
        match sched.step(ex, clock) {
            Step::Finished => return sched.take_merged().expect("finished implies merged"),
            Step::Worked => {}
            Step::Idle => {
                let (src, bytes) = sched.comm.clone().recv_bytes_any(TAG_SCHED, clock);
                sched.handle(src, &bytes, ex, clock);
            }
        }
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parade_net::{Fabric, NetProfile};

    fn run_cluster(
        nnodes: usize,
        cfg: SchedConfig,
        body: impl Fn(&mut NodeSched, &mut VClock) + Send + Sync + 'static,
        func: impl Fn(&TaskDesc, &mut TaskCtx) -> Vec<f64> + Send + Sync + 'static,
    ) -> Vec<Vec<(u64, Vec<f64>)>> {
        let fabric = Fabric::new(nnodes, NetProfile::zero());
        let body = Arc::new(body);
        let func = Arc::new(func);
        let handles: Vec<_> = (0..nnodes)
            .map(|n| {
                let comm = Arc::new(Communicator::new(fabric.endpoint(n)));
                let body = Arc::clone(&body);
                let func = Arc::clone(&func);
                std::thread::spawn(move || {
                    let mut clock = VClock::manual();
                    let mut sched = NodeSched::new(comm, cfg);
                    body(&mut sched, &mut clock);
                    let mut ex = move |d: &TaskDesc, t: &mut TaskCtx, _c: &mut VClock| func(d, t);
                    run_to_merge(&mut sched, &mut ex, &mut clock)
                })
            })
            .collect();
        let out: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        fabric.begin_shutdown();
        out
    }

    fn sum_func(d: &TaskDesc, _t: &mut TaskCtx) -> Vec<f64> {
        vec![d.args.iter().map(|&a| a as f64).sum::<f64>() + d.id as f64]
    }

    #[test]
    fn flat_and_random_merge_identically() {
        let spawn8 = |s: &mut NodeSched, c: &mut VClock| {
            for i in 0..8u64 {
                s.spawn(0, vec![i, i * i], c);
            }
        };
        let flat = run_cluster(
            4,
            SchedConfig {
                strategy: StealStrategy::Flat,
                ..SchedConfig::default()
            },
            spawn8,
            sum_func,
        );
        let random = run_cluster(4, SchedConfig::default(), spawn8, sum_func);
        assert_eq!(flat[0].len(), 32); // 8 spawns x 4 nodes
        for views in [&flat, &random] {
            for v in views.iter().skip(1) {
                assert_eq!(&views[0], v, "all nodes must see one merged result");
            }
        }
        assert_eq!(flat[0], random[0]);
    }

    #[test]
    fn dep_chains_inject_results_in_order() {
        // Node 0 spawns a 4-stage chain where each stage doubles its
        // predecessor's value and adds one; other nodes spawn nothing.
        let out = run_cluster(
            2,
            SchedConfig::default(),
            |s, c| {
                if s.node() == 0 {
                    let mut prev: Option<u64> = None;
                    for stage in 0..4u64 {
                        let (deps, inject) = match prev {
                            Some(p) => (vec![p], true),
                            None => (vec![], false),
                        };
                        prev = Some(s.spawn_with_deps(1, vec![stage], deps, inject, c));
                    }
                }
            },
            |d: &TaskDesc, _t: &mut TaskCtx| {
                // args = [stage] or [stage, injected prev result bits]
                let stage = d.args[0];
                if stage == 0 {
                    vec![1.0]
                } else {
                    let prev = f64::from_bits(d.args[1]);
                    vec![prev * 2.0 + 1.0]
                }
            },
        );
        // Chain values: 1, 3, 7, 15.
        let vals: Vec<f64> = out[0].iter().map(|(_, r)| r[0]).collect();
        assert_eq!(vals, vec![1.0, 3.0, 7.0, 15.0]);
        assert_eq!(out[0], out[1]);
    }

    #[test]
    fn taskwait_blocks_until_children_done() {
        let out = run_cluster(
            3,
            SchedConfig {
                strategy: StealStrategy::Flat,
                ..SchedConfig::default()
            },
            |s, c| {
                for i in 0..5u64 {
                    s.spawn(0, vec![i], c);
                }
                let mut ex = |d: &TaskDesc, _t: &mut TaskCtx, _c: &mut VClock| sum_func(d, _t);
                s.taskwait(&mut ex, c);
                // After taskwait every child of this node has a result at
                // this home.
                assert_eq!(s.results.len(), 5);
                s.spawn(0, vec![99], c);
            },
            sum_func,
        );
        assert_eq!(out[0].len(), 18); // (5 + 1) x 3 nodes
    }

    #[test]
    fn child_spawns_execute_and_merge() {
        let out = run_cluster(
            2,
            SchedConfig::default(),
            |s, c| {
                if s.node() == 0 {
                    s.spawn(0, vec![3], c); // root task spawns 3 children
                }
            },
            |d: &TaskDesc, t: &mut TaskCtx| {
                if d.func == 0 {
                    for i in 0..d.args[0] {
                        t.spawn(1, vec![i]);
                    }
                    vec![]
                } else {
                    vec![d.args[0] as f64]
                }
            },
        );
        assert_eq!(out[0].len(), 4); // root + 3 children
        let child_vals: Vec<f64> = out[0]
            .iter()
            .filter(|(_, r)| !r.is_empty())
            .map(|(_, r)| r[0])
            .collect();
        assert_eq!(child_vals, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn pinned_target_runs_on_device_and_syncs() {
        let out = run_cluster(
            3,
            SchedConfig::default(),
            |s, c| {
                if s.node() == 0 {
                    let id = s.target(2, 7, vec![40], c);
                    let mut ex = |d: &TaskDesc, _t: &mut TaskCtx, _c: &mut VClock| {
                        // Node 0 must never execute the pinned body.
                        assert_eq!(d.func, u32::MAX, "pinned task stolen by requester");
                        vec![]
                    };
                    s.target_sync(id, &mut ex, c);
                    assert_eq!(s.completed.get(&id).unwrap().0, vec![42.0]);
                }
            },
            |d: &TaskDesc, _t: &mut TaskCtx| vec![(d.args[0] + 2) as f64],
        );
        assert_eq!(out[0].len(), 1);
        assert_eq!(out[0][0].1, vec![42.0]);
    }

    #[test]
    fn a_stealing_node_is_active_and_holds_the_token() {
        // Regression for a termination livelock: a node that still steals
        // must NOT be Safra-passive. When it was, a probe could complete
        // with a StealReq in flight; the straggler (or its reply) outlived
        // the phase in the receiver's mailbox and permanently skewed the
        // next phase's message balance, so no probe ever succeeded again.
        let fabric = Fabric::new(3, NetProfile::zero());
        let comms: Vec<Arc<Communicator>> = (0..3)
            .map(|n| Arc::new(Communicator::new(fabric.endpoint(n))))
            .collect();
        let mut clock = VClock::manual();
        let mut s = NodeSched::new(Arc::clone(&comms[1]), SchedConfig::default());
        s.body_done();
        // Empty deque, body done — but victims untried: ACTIVE, not passive.
        assert!(!s.passive(), "a node with steals left must be active");
        // Hand it a token mid-steal: it must hold it, not forward it.
        let fanout = s.cfg.victim_fanout;
        for round in 0..fanout {
            assert!(s.idle_actions(&mut clock), "must send a steal request");
            assert!(s.steal_outstanding);
            s.token = Some((0, false));
            assert!(
                !s.idle_actions(&mut clock),
                "token must be held while a steal request is outstanding"
            );
            assert!(s.token.is_some(), "token forwarded mid-steal");
            // The victim's empty reply makes it a miss.
            s.steal_outstanding = false;
            s.steal_misses = round + 1;
        }
        // Miss budget exhausted: now passive, and the token flows.
        assert!(s.passive(), "exhausted thief must become passive");
        assert!(s.idle_actions(&mut clock), "held token must be forwarded");
        assert!(s.token.is_none());
        fabric.begin_shutdown();
    }

    #[test]
    fn single_thread_round_robin_is_deterministic() {
        // Drive 4 schedulers from one thread (the bench harness pattern):
        // same seed twice must give identical merges AND identical final
        // virtual clocks; a different seed still merges identically.
        let drive = |seed: u64| {
            let nn = 4;
            let fabric = Fabric::new(nn, NetProfile::clan_via());
            let mut scheds: Vec<NodeSched> = (0..nn)
                .map(|n| {
                    NodeSched::new(
                        Arc::new(Communicator::new(fabric.endpoint(n))),
                        SchedConfig {
                            seed,
                            ..SchedConfig::default()
                        },
                    )
                })
                .collect();
            let mut clocks: Vec<VClock> = (0..nn).map(|_| VClock::manual()).collect();
            let mut ex = |d: &TaskDesc, _t: &mut TaskCtx, _c: &mut VClock| {
                vec![(d.id as f64).sqrt() + d.args[0] as f64]
            };
            for n in 0..nn {
                for i in 0..6u64 {
                    scheds[n].spawn(0, vec![i * n as u64], &mut clocks[n]);
                }
                scheds[n].body_done();
            }
            let mut merged: Vec<Option<IdResults>> = vec![None; nn];
            while merged.iter().any(|m| m.is_none()) {
                for n in 0..nn {
                    if merged[n].is_none()
                        && scheds[n].step(&mut ex, &mut clocks[n]) == Step::Finished
                    {
                        merged[n] = scheds[n].take_merged();
                    }
                }
            }
            let times: Vec<u64> = clocks.iter().map(|c| c.now().as_nanos()).collect();
            fabric.begin_shutdown();
            (merged[0].clone().unwrap(), times)
        };
        let (m1, t1) = drive(1);
        let (m2, t2) = drive(1);
        let (m3, _) = drive(999);
        assert_eq!(m1, m2);
        assert_eq!(t1, t2, "same seed must replay identical virtual time");
        assert_eq!(m1, m3, "merged result is seed-independent");
        assert_eq!(m1.len(), 24);
    }
}
