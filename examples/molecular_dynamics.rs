//! The MD application of the paper's §6.2 (Figure 11): a simple molecular
//! dynamics simulation in continuous real space.
//!
//! ```text
//! cargo run --release --example molecular_dynamics -- [nodes] [particles] [steps]
//! ```

use parade::core::{Cluster, ClusterConfig, ExecConfig};
use parade::kernels::md::{md_parade, md_sequential, MdParams};
use parade::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nodes: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(4);
    let np: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(256);
    let steps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(10);

    let p = MdParams::sized(np, steps);
    println!("MD: {np} particles, {steps} velocity-Verlet steps\n");

    let seq = md_sequential(p);
    println!(
        "sequential reference: E0 = {:.6}, E_end = {:.6}, drift = {:.2e}\n",
        seq.first.total(),
        seq.last.total(),
        seq.drift()
    );

    println!("| configuration | virtual time | E_end      | energy drift |");
    println!("|---------------|--------------|------------|--------------|");
    for exec in ExecConfig::PAPER_CONFIGS {
        let cfg = ClusterConfig {
            nodes,
            exec,
            net: NetProfile::clan_via(),
            ..ClusterConfig::default()
        };
        let cluster = Cluster::from_config(cfg);
        let (r, report) = md_parade(&cluster, p);
        assert!(
            (r.last.total() - seq.last.total()).abs() < 1e-9,
            "parallel MD diverged from the sequential reference"
        );
        println!(
            "| {:13} | {:>12} | {:>10.6} | {:.2e}    |",
            exec.label(),
            format!("{}", report.exec_time),
            r.last.total(),
            r.drift()
        );
    }
    println!(
        "\nPositions are shared through the DSM and read by every node each\n\
         step; the potential/kinetic energies are a two-variable reduction\n\
         merged into a single collective (paper §4.2). Less shared data than\n\
         Helmholtz, hence the good scaling in all configurations (Fig. 11)."
    );
}
