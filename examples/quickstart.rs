//! Quickstart: build a simulated SMP cluster, run an OpenMP-style
//! parallel region, and inspect the run report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use parade::prelude::*;

fn main() {
    // A 4-node cluster of dual-CPU SMPs, two compute threads per node —
    // the paper's 2Thread-2CPU configuration on the cLAN/VIA fabric.
    let cluster = Cluster::builder()
        .nodes(4)
        .exec(ExecConfig::TwoThreadTwoCpu)
        .net(NetProfile::clan_via())
        .build()
        .expect("valid configuration");

    let n = 1 << 20;
    let (result, report) = cluster.run_with_report(move |g| {
        // Shared memory is allocated by the master and becomes visible on
        // every node through the software DSM.
        let xs = g.alloc_f64(n);

        // Fork a parallel region (the `parallel` directive).
        g.parallel(move |tc| {
            // Work-sharing `for` with static scheduling.
            let v = tc.bind_f64(&xs);
            for i in tc.for_static(0..n) {
                v.set(i, (i as f64).sqrt());
            }
            tc.barrier();

            // Each thread sums its block; a reduction collective combines.
            let mut local = 0.0;
            let mine = tc.for_static(0..n);
            let mut buf = vec![0.0f64; mine.len()];
            v.read_into(mine.start, &mut buf);
            for x in buf {
                local += x;
            }
            tc.reduce_f64_sum(local)
        })
    });

    let expect: f64 = (0..n).map(|i| (i as f64).sqrt()).sum();
    println!("parallel sum      = {result:.6e}");
    println!("sequential sum    = {expect:.6e}");
    println!("virtual exec time = {}", report.exec_time);
    let d = report.cluster.dsm_totals();
    println!(
        "protocol activity : {} page fetches, {} diffs, {} barriers, {} migrations",
        d.page_fetches, d.diffs_sent, d.barriers, d.home_migrations
    );
    println!(
        "network traffic   : {} messages, {} bytes",
        report.cluster.traffic.msgs, report.cluster.traffic.bytes
    );
    assert!((result - expect).abs() / expect < 1e-12);
}
