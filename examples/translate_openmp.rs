//! The full ParADE pipeline on an OpenMP C program: statically check it
//! (`paradec check`), translate it for both runtimes (paper Figures 2/3),
//! and then *execute* it on the simulated cluster through the interpreter.
//!
//! The example also feeds the analyzer a deliberately racy variant of the
//! program — the reduction clause dropped — to show what a diagnostic
//! looks like and why checking runs *before* translation.
//!
//! ```text
//! cargo run --release --example translate_openmp
//! ```

use parade::check::{check_program, has_errors};
use parade::prelude::*;
use parade::translator::{parse, translate_default, EmitMode, Interp};

const PROGRAM: &str = r#"
#include <stdio.h>
#include <math.h>

int main() {
    int i, it;
    double u[256];
    double unew[256];
    double err = 0.0;

    #pragma omp parallel for
    for (i = 0; i < 256; i++) u[i] = 0.0;
    u[0] = 1.0;
    u[255] = 1.0;

    for (it = 0; it < 100; it++) {
        err = 0.0;
        #pragma omp parallel for reduction(+: err) private(i)
        for (i = 1; i < 255; i++) {
            double r;
            r = 0.5 * (u[i-1] + u[i+1]) - u[i];
            unew[i] = u[i] + r;
            err += r * r;
        }
        #pragma omp parallel for
        for (i = 1; i < 255; i++) u[i] = unew[i];
    }
    printf("relaxation residual = %.6e\n", sqrt(err));
    printf("u[128] = %.4f\n", u[128]);
    return 0;
}
"#;

/// The same relaxation loop with the `reduction(+: err)` clause dropped:
/// every thread now races on the shared accumulator. The analyzer flags it
/// (PC001) before the program ever reaches the runtime.
const RACY_PROGRAM: &str = r#"
#include <stdio.h>

int main() {
    int i;
    double u[256];
    double err = 0.0;

    #pragma omp parallel for
    for (i = 0; i < 256; i++) u[i] = 0.5;

    #pragma omp parallel for private(i)
    for (i = 1; i < 255; i++) {
        err += u[i] * u[i];
    }
    printf("err = %f\n", err);
    return 0;
}
"#;

fn main() {
    // ---- 1. a broken program never reaches the runtime -------------------
    println!("==== paradec check: a racy variant (reduction clause dropped) ====\n");
    let racy = parse(RACY_PROGRAM).expect("racy program still parses");
    let diags = check_program(&racy);
    for d in &diags {
        println!("{}", d.render("racy.c"));
    }
    assert!(
        has_errors(&diags),
        "the dropped reduction must be caught statically"
    );
    println!("\n(refused: fix the program or re-run with --no-check)\n");

    // ---- 2. the correct program checks clean, then translates ------------
    let prog = parse(PROGRAM).expect("program parses");
    let diags = check_program(&prog);
    assert!(diags.is_empty(), "clean program must stay clean: {diags:?}");
    println!("==== paradec check: clean — proceeding to translation ====\n");

    println!("==== translated for the ParADE hybrid runtime ====\n");
    println!("{}", translate_default(&prog, EmitMode::Parade).unwrap());

    println!("==== translated for a conventional SDSM (baseline) ====\n");
    println!("{}", translate_default(&prog, EmitMode::Sdsm).unwrap());

    println!("==== executing on a simulated 4-node cluster ====\n");
    let cluster = Cluster::builder()
        .nodes(4)
        .threads_per_node(2)
        .net(NetProfile::clan_via())
        .build()
        .unwrap();
    let out = Interp::new(parse(PROGRAM).unwrap())
        .run(&cluster)
        .expect("program runs");
    print!("{}", out.stdout);
    println!("\n[exit code {}]", out.exit);
}
