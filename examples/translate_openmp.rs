//! The full ParADE pipeline on an OpenMP C program: translate it for both
//! runtimes (paper Figures 2/3) and then *execute* it on the simulated
//! cluster through the interpreter.
//!
//! ```text
//! cargo run --release --example translate_openmp
//! ```

use parade::prelude::*;
use parade::translator::{parse, translate_default, EmitMode, Interp};

const PROGRAM: &str = r#"
#include <stdio.h>
#include <math.h>

int main() {
    int i, it;
    double u[256];
    double unew[256];
    double err = 0.0;

    #pragma omp parallel for
    for (i = 0; i < 256; i++) u[i] = 0.0;
    u[0] = 1.0;
    u[255] = 1.0;

    for (it = 0; it < 100; it++) {
        err = 0.0;
        #pragma omp parallel for reduction(+: err) private(i)
        for (i = 1; i < 255; i++) {
            double r;
            r = 0.5 * (u[i-1] + u[i+1]) - u[i];
            unew[i] = u[i] + r;
            err += r * r;
        }
        #pragma omp parallel for
        for (i = 1; i < 255; i++) u[i] = unew[i];
    }
    printf("relaxation residual = %.6e\n", sqrt(err));
    printf("u[128] = %.4f\n", u[128]);
    return 0;
}
"#;

fn main() {
    let prog = parse(PROGRAM).expect("program parses");

    println!("==== translated for the ParADE hybrid runtime ====\n");
    println!("{}", translate_default(&prog, EmitMode::Parade).unwrap());

    println!("==== translated for a conventional SDSM (baseline) ====\n");
    println!("{}", translate_default(&prog, EmitMode::Sdsm).unwrap());

    println!("==== executing on a simulated 4-node cluster ====\n");
    let cluster = Cluster::builder()
        .nodes(4)
        .threads_per_node(2)
        .net(NetProfile::clan_via())
        .build()
        .unwrap();
    let out = Interp::new(parse(PROGRAM).unwrap())
        .run(&cluster)
        .expect("program runs");
    print!("{}", out.stdout);
    println!("\n[exit code {}]", out.exit);
}
