/* Task pipeline with a device offload. Two dependent tasks transform the
 * vector stage by stage, then a `target` region reduces it on device 0 —
 * under ParADE a "device" is a remote SMP node, and the `map` clauses
 * become DSM page fetches (to) and diff-batch write-backs (from). */
#include <stdio.h>

int main() {
    int i;
    double raw[256];
    double scaled[256];
    double smoothed[256];
    double total;

    #pragma omp parallel for
    for (i = 0; i < 256; i++) {
        raw[i] = 0.5 + 0.001 * i;
        scaled[i] = 0.0;
        smoothed[i] = 0.0;
    }

    #pragma omp parallel
    {
        #pragma omp task depend(in: raw) depend(out: scaled)
        {
            int j;
            for (j = 0; j < 256; j++) {
                scaled[j] = 2.0 * raw[j];
            }
        }
        #pragma omp task depend(in: scaled) depend(out: smoothed)
        {
            int j;
            for (j = 1; j < 255; j++) {
                smoothed[j] = 0.25 * scaled[j - 1] + 0.5 * scaled[j] + 0.25 * scaled[j + 1];
            }
        }
        #pragma omp taskwait
    }

    total = 0.0;
    #pragma omp target device(0) map(to: smoothed) map(tofrom: total)
    {
        for (i = 0; i < 256; i++) {
            total = total + smoothed[i];
        }
    }
    printf("total = %.6f\n", total);
    return 0;
}
