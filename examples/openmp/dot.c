/* Dot product plus a max-norm pass. Exercises `+` and `max` reductions on
 * `parallel for` (lowered to message-passing allreduces) and a
 * critical-guarded update of a shared scalar. */
#include <stdio.h>
#include <math.h>

int main() {
    int i;
    double a[1024];
    double b[1024];
    double dot;
    double norm;
    double checks;

    #pragma omp parallel for
    for (i = 0; i < 1024; i++) {
        a[i] = 0.001 * i;
        b[i] = 1.0 - 0.001 * i;
    }

    dot = 0.0;
    #pragma omp parallel for reduction(+ : dot)
    for (i = 0; i < 1024; i++) {
        dot += a[i] * b[i];
    }

    norm = 0.0;
    #pragma omp parallel for reduction(max : norm)
    for (i = 0; i < 1024; i++) {
        norm = fmax(norm, fabs(a[i]));
    }

    checks = 0.0;
    #pragma omp parallel
    {
        #pragma omp critical
        {
            checks = checks + 1.0;
        }
    }
    printf("dot = %.6f, max|a| = %.6f, threads = %.0f\n", dot, norm, checks);
    return 0;
}
