/* Red/black-free Jacobi relaxation: reads of `u`, writes only to `unew`,
 * then a disjoint copy-back loop. The write/read sets of each distributed
 * loop are disjoint per iteration, so the analyzer stays silent. */
#include <stdio.h>
#include <math.h>

int main() {
    int i;
    int it;
    double u[256];
    double unew[256];
    double err;

    #pragma omp parallel for
    for (i = 0; i < 256; i++) {
        u[i] = 0.0;
    }
    u[0] = 1.0;
    u[255] = 1.0;

    for (it = 0; it < 20; it++) {
        err = 0.0;
        #pragma omp parallel for reduction(+ : err)
        for (i = 1; i < 255; i++) {
            unew[i] = 0.5 * (u[i - 1] + u[i + 1]);
            err += (unew[i] - u[i]) * (unew[i] - u[i]);
        }
        #pragma omp parallel for
        for (i = 1; i < 255; i++) {
            u[i] = unew[i];
        }
    }
    printf("residual = %.6e\n", sqrt(err));
    return 0;
}
