/* Task-based n-body energy update. Each phase — force accumulation,
 * potential energy, kinetic energy — is a task; `depend` edges order the
 * writers against the readers, so the runtime's distributed work-stealing
 * scheduler may place each task on any node while the dependence graph
 * keeps the dataflow race-free (PC008 checks exactly this). */
#include <stdio.h>

int main() {
    int i;
    double pos[64];
    double acc[64];
    double pot;
    double kin;

    #pragma omp parallel for
    for (i = 0; i < 64; i++) {
        pos[i] = 0.01 * i;
        acc[i] = 0.0;
    }

    pot = 0.0;
    kin = 0.0;
    #pragma omp parallel
    {
        #pragma omp task depend(out: acc)
        {
            int j;
            for (j = 0; j < 64; j++) {
                acc[j] = acc[j] + 0.5 * pos[j];
            }
        }
        #pragma omp task depend(in: acc) depend(out: pot)
        {
            int j;
            for (j = 0; j < 64; j++) {
                pot = pot + acc[j] * pos[j];
            }
        }
        #pragma omp task depend(in: acc) depend(out: kin)
        {
            int j;
            for (j = 0; j < 64; j++) {
                kin = kin + 0.5 * acc[j] * acc[j];
            }
        }
        #pragma omp taskwait
    }
    printf("pot = %.6f, kin = %.6f\n", pot, kin);
    return 0;
}
