/* Midpoint-rule estimate of pi. Exercises `parallel for` with a `+`
 * reduction — the hybrid translator lowers the partial sums to a
 * message-passing allreduce instead of SDSM traffic. */
#include <stdio.h>

int main() {
    int i;
    int n;
    double h;
    double x;
    double pi;

    n = 8192;
    h = 1.0 / n;
    pi = 0.0;
    #pragma omp parallel for private(x) reduction(+ : pi)
    for (i = 0; i < n; i++) {
        x = h * (i + 0.5);
        pi += 4.0 / (1.0 + x * x);
    }
    pi = pi * h;
    printf("pi ~= %.8f\n", pi);
    return 0;
}
