//! Demonstrates the migratory-home optimization of the HLRC protocol
//! (paper §5.2.2): a page repeatedly written by one node migrates to that
//! node, after which its accesses are purely local.
//!
//! ```text
//! cargo run --release --example home_migration
//! ```

use parade::core::{Cluster, ClusterConfig};
use parade::dsm::HomePolicy;
use parade::prelude::*;

fn run(policy: HomePolicy) -> (u64, u64, u64, VTime) {
    let cfg = ClusterConfig {
        nodes: 4,
        home_policy: Some(policy),
        net: NetProfile::clan_via(),
        ..ClusterConfig::default()
    };
    let cluster = Cluster::from_config(cfg);
    let rounds = 50usize;
    let n = 16 * 1024; // 32 pages of f64
    let (_, report) = cluster.run_with_report(move |g| {
        let v = g.alloc_f64(n);
        g.parallel(move |tc| {
            // Each thread owns a contiguous block and updates it every
            // round — the regular scientific-loop pattern the paper's
            // migratory home targets. With a fixed home (master node),
            // every round ships diffs back to node 0; with migration the
            // pages move to their writers after the first barrier.
            let mine = tc.for_static(0..n);
            let mut buf = vec![0.0f64; mine.len()];
            for round in 0..rounds {
                tc.read_into(&v, mine.start, &mut buf);
                for x in buf.iter_mut() {
                    *x += round as f64;
                }
                tc.write_from(&v, mine.start, &buf);
                tc.barrier();
            }
        });
    });
    let d = report.cluster.dsm_totals();
    (
        d.page_fetches,
        d.diffs_sent,
        d.home_migrations,
        report.exec_time,
    )
}

fn main() {
    println!("Workload: 4 nodes, 32 shared pages, each page written by one");
    println!("node every iteration for 50 barriered rounds.\n");
    let (f_fetch, f_diff, f_migr, f_time) = run(HomePolicy::Fixed);
    let (m_fetch, m_diff, m_migr, m_time) = run(HomePolicy::Migratory);
    println!("| home policy | page fetches | diffs sent | migrations | virtual time |");
    println!("|-------------|--------------|------------|------------|--------------|");
    println!("| fixed       | {f_fetch:>12} | {f_diff:>10} | {f_migr:>10} | {f_time:>12} |");
    println!("| migratory   | {m_fetch:>12} | {m_diff:>10} | {m_migr:>10} | {m_time:>12} |");
    println!();
    println!(
        "Migratory homes eliminate the steady-state diff traffic: after the\n\
         first barrier each page's home is its writer, so subsequent rounds\n\
         run without any page communication (paper §5.2.2)."
    );
    assert!(m_diff < f_diff, "migration should reduce diff traffic");
    assert!(m_time < f_time, "migration should reduce execution time");
}
