//! The Helmholtz/Jacobi application of the paper's §6.2 (Figure 10),
//! runnable at any size and cluster shape:
//!
//! ```text
//! cargo run --release --example heat_equation -- [nodes] [grid] [iters]
//! ```
//!
//! Prints convergence, the solution error against the manufactured exact
//! solution, and the virtual execution time under each of the paper's
//! three execution configurations.

use parade::core::{Cluster, ClusterConfig, ExecConfig};
use parade::kernels::helmholtz::{helmholtz_parade, helmholtz_sequential, HelmholtzParams};
use parade::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nodes: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(4);
    let grid: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(120);
    let iters: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(200);

    let p = HelmholtzParams::sized(grid, grid, iters);
    println!("Helmholtz {grid}x{grid}, up to {iters} Jacobi iterations\n");

    let seq = helmholtz_sequential(p);
    println!(
        "sequential reference: {} iters, residual {:.3e}, rms error {:.3e}\n",
        seq.iters, seq.error, seq.solution_error
    );

    println!("| configuration | virtual time | residual | page fetches | reductions/iter |");
    println!("|---------------|--------------|----------|--------------|-----------------|");
    for exec in ExecConfig::PAPER_CONFIGS {
        let cfg = ClusterConfig {
            nodes,
            exec,
            net: NetProfile::clan_via(),
            ..ClusterConfig::default()
        };
        let cluster = Cluster::from_config(cfg);
        let (r, report) = helmholtz_parade(&cluster, p);
        assert!((r.error - seq.error).abs() <= 1e-9 * seq.error.max(1e-30));
        let d = report.cluster.dsm_totals();
        println!(
            "| {:13} | {:>12} | {:.2e} | {:>12} | 1 allreduce     |",
            exec.label(),
            format!("{}", report.exec_time),
            r.error,
            d.page_fetches
        );
    }
    println!(
        "\nThe per-iteration convergence check (a competitively updated shared\n\
         variable) is lowered to a reduction collective — the optimization that\n\
         makes this application scale nearly linearly in the paper (Fig. 10)."
    );
}
