#!/usr/bin/env bash
# Tier-1 CI entry point. The workspace is hermetic: it builds and tests
# with zero external crates, so everything below runs with --offline and
# must pass on a machine with no network access at all.
#
#   scripts/ci.sh          # build + test (tier-1 gate)
#   scripts/ci.sh --quick  # debug build + test only (skips release build)
#
# Optional extras run only when the tool is installed:
#   cargo fmt --check      # style gate (rustfmt component)
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
  QUICK=1
fi

echo "== cargo build --release --offline =="
if [[ "$QUICK" == "0" ]]; then
  cargo build --release --offline
else
  echo "(skipped: --quick)"
fi

echo "== cargo test -q --offline --workspace =="
cargo test -q --offline --workspace

echo "== cargo build --offline --benches --bins (bench harness compiles) =="
cargo build --offline --workspace --benches --bins

echo "== cargo clippy --offline --workspace -- -D warnings =="
if cargo clippy --version >/dev/null 2>&1; then
  cargo clippy --offline --workspace --all-targets -- -D warnings
else
  echo "(skipped: clippy not installed)"
fi

echo "== paradec check over examples/openmp (analyzer smoke) =="
for f in examples/openmp/*.c; do
  cargo run -q --offline -p parade-check --bin paradec -- check "$f"
done
# The analyzer gate must also FAIL closed: a racy program exits non-zero.
RACY_TMP="$(mktemp -d)"
cat > "$RACY_TMP/racy.c" <<'EOF'
int main() {
    int i;
    double sum;
    sum = 0.0;
    #pragma omp parallel for
    for (i = 0; i < 64; i++) {
        sum += 1.0;
    }
    return 0;
}
EOF
if cargo run -q --offline -p parade-check --bin paradec -- check "$RACY_TMP/racy.c" \
    2>"$RACY_TMP/err"; then
  echo "paradec check accepted a racy program" >&2
  exit 1
fi
grep -q "error\[PC001\]" "$RACY_TMP/err"
rm -rf "$RACY_TMP"

echo "== analyzer parity gate (AST vs MIR over tests/corpus) =="
# The MIR analyzer must reproduce the AST analyzer's PC001-PC008 verdicts
# byte-for-byte on every corpus program; only the flow-sensitive PC009 and
# PC010 lines may be MIR-exclusive. `--json` carries no backend field, so
# the two outputs diff directly once those lines are filtered out.
PARITY_TMP="$(mktemp -d)"
for f in tests/corpus/*/*.c; do
  cargo run -q --offline -p parade-check --bin paradec -- check "$f" --json \
    > "$PARITY_TMP/mir.json" || true
  cargo run -q --offline -p parade-check --bin paradec -- check "$f" --json --ast-check \
    > "$PARITY_TMP/ast.json" || true
  grep -v '"lint":"PC009"\|"lint":"PC010"' "$PARITY_TMP/mir.json" \
    > "$PARITY_TMP/mir_filtered.json" || true
  if ! diff -u "$PARITY_TMP/ast.json" "$PARITY_TMP/mir_filtered.json"; then
    echo "analyzer parity drift on $f" >&2
    exit 1
  fi
done
rm -rf "$PARITY_TMP"

# The flow-sensitive lints must also FAIL closed: the deadlocking corpus
# programs exit non-zero with the expected code, and their clean twins pass.
DEADLOCK_TMP="$(mktemp -d)"
if cargo run -q --offline -p parade-check --bin paradec -- \
    check tests/corpus/conform/barrier_divergent_break.c 2>"$DEADLOCK_TMP/err"; then
  echo "paradec check accepted a divergent-barrier deadlock" >&2
  exit 1
fi
grep -q "error\[PC009\]" "$DEADLOCK_TMP/err"
if cargo run -q --offline -p parade-check --bin paradec -- \
    check tests/corpus/conform/task_depend_cycle.c 2>"$DEADLOCK_TMP/err"; then
  echo "paradec check accepted a task depend cycle" >&2
  exit 1
fi
grep -q "error\[PC010\]" "$DEADLOCK_TMP/err"
cargo run -q --offline -p parade-check --bin paradec -- \
  check tests/corpus/clean/barrier_uniform_break.c >/dev/null
cargo run -q --offline -p parade-check --bin paradec -- \
  check tests/corpus/clean/task_depend_diamond.c >/dev/null
rm -rf "$DEADLOCK_TMP"

echo "== traced smoke run (figures -- trace) =="
TRACE_TMP="$(mktemp -d)"
PARADE_TRACE="$TRACE_TMP/smoke_trace.json" \
  cargo run -q --offline -p parade-bench --bin figures -- trace --quick \
  > "$TRACE_TMP/breakdown.md"
# trace_breakdown already validates the JSON and the report in-process and
# exits nonzero on failure; double-check the artifacts are non-empty.
test -s "$TRACE_TMP/smoke_trace.json"
grep -q "omp.barrier" "$TRACE_TMP/breakdown.md"
rm -rf "$TRACE_TMP"

echo "== seeded chaos soak (figures -- chaos-smoke) =="
# CG class S on 4 nodes over a lossy wire (PARADE_CHAOS or the pinned
# schedule): the binary exits nonzero unless the result is bit-identical
# to a chaos-free run AND at least one retransmission happened.
SOAK_TMP="$(mktemp -d)"
cargo run -q --offline -p parade-bench --bin figures -- chaos-smoke \
  > "$SOAK_TMP/chaos.md"
grep -q "Chaos smoke" "$SOAK_TMP/chaos.md"
grep -q "retransmits" "$SOAK_TMP/chaos.md"
rm -rf "$SOAK_TMP"

echo "== task scheduler smoke (figures -- task-smoke) =="
# Task-based n-body on 4 nodes: flat placement and two steal seeds must
# merge bit-identically to the blockwise sequential reference — the
# binary exits nonzero on any divergence.
TASK_TMP="$(mktemp -d)"
cargo run -q --offline -p parade-bench --bin figures -- task-smoke \
  > "$TASK_TMP/task.md"
grep -q "Task smoke" "$TASK_TMP/task.md"
grep -q "flat placement" "$TASK_TMP/task.md"
if grep -q "false" "$TASK_TMP/task.md"; then
  echo "task-smoke reported a non-bit-identical schedule" >&2
  exit 1
fi
rm -rf "$TASK_TMP"

echo "== chaos steal-soak (figures -- steal-soak) =="
# The same task phase under randomized stealing over a lossy wire
# (PARADE_CHAOS or the pinned schedule): exactly-once scheduling,
# bit-identical energies, and at least one retransmission.
STEAL_TMP="$(mktemp -d)"
cargo run -q --offline -p parade-bench --bin figures -- steal-soak \
  > "$STEAL_TMP/steal.md"
grep -q "Steal soak" "$STEAL_TMP/steal.md"
grep -q "retransmits" "$STEAL_TMP/steal.md"
rm -rf "$STEAL_TMP"

echo "== adaptive-DSM smoke (figures -- adapt-smoke) =="
# CG class S on 4 nodes under all-invalidate / all-update / adaptive
# per-page protocol selection, plus adaptive with stride prefetch: the
# binary exits nonzero unless every mode is NPB-verified, bit-identical
# to the all-invalidate reference, and the bulk range-fetch path fired.
ADAPT_TMP="$(mktemp -d)"
cargo run -q --offline -p parade-bench --bin figures -- adapt-smoke \
  > "$ADAPT_TMP/adapt.md"
grep -q "Adaptive-DSM smoke" "$ADAPT_TMP/adapt.md"
grep -q "all-update" "$ADAPT_TMP/adapt.md"
rm -rf "$ADAPT_TMP"

echo "== serving soak (figures -- serve-soak) =="
# 1000 small jobs (CG-S/EP/n-body mix) gang-scheduled onto one 12-node
# machine under a lossy wire (PARADE_CHAOS or the pinned schedule), one in
# seven scheduled to lose a node mid-run. The binary exits nonzero unless
# every job completes exactly once, bit-identical to its sequential
# reference, and at least one job survived a death via checkpoint re-home.
SERVE_TMP="$(mktemp -d)"
cargo run -q --offline --release -p parade-bench --bin figures -- serve-soak \
  > "$SERVE_TMP/serve.md"
grep -q "Serve soak" "$SERVE_TMP/serve.md"
grep -q "1000/1000" "$SERVE_TMP/serve.md"
rm -rf "$SERVE_TMP"

echo "== serving bench + regression gate (emits BENCH_serving.json) =="
# serve/ metrics (virtual makespan, latency, completions) are gated at 20%
# against the committed baseline; serve_info/ re-home counts are recorded
# but not gated (whether a scheduled death fires races job completion and
# is schedule-dependent).
SERVE_BENCH_TMP="$(mktemp -d)"
PARADE_BENCH_JSON="$SERVE_BENCH_TMP" \
  cargo bench -q --offline -p parade-bench --bench serving \
  > "$SERVE_BENCH_TMP/serving.md"
test -s "$SERVE_BENCH_TMP/BENCH_serving.json"
cargo run -q --offline --release -p parade-bench --bin bench_gate -- \
  "$SERVE_BENCH_TMP/BENCH_serving.json" scripts/bench_baseline/BENCH_serving.json 20
rm -rf "$SERVE_BENCH_TMP"

echo "== primitives microbench (emits BENCH_primitives.json) =="
BENCH_TMP="$(mktemp -d)"
PARADE_BENCH_JSON="$BENCH_TMP" \
  cargo bench -q --offline -p parade-bench --bench primitives \
  > "$BENCH_TMP/primitives.md"
test -s "$BENCH_TMP/BENCH_primitives.json"
rm -rf "$BENCH_TMP"

echo "== dsm release-path bench + regression gate (emits BENCH_dsm.json) =="
# The release/, coll/, tasks/, fault_storm/, and adapt/ metrics are
# simulated virtual time and quiesced message counts — deterministic on
# any host — gated at 20% against the
# committed baseline. The coll/ and tasks/ scaling families (…_{N}n) are
# additionally gated on
# *shape*: each node-count doubling must cost < 1.7x the previous rung, so
# a silent fallback from the hierarchical collectives to the flat O(N)
# algorithms fails CI even if no single point drifts past the tolerance.
DSM_BENCH_TMP="$(mktemp -d)"
PARADE_BENCH_JSON="$DSM_BENCH_TMP" \
  cargo bench -q --offline -p parade-bench --bench dsm \
  > "$DSM_BENCH_TMP/dsm.md"
test -s "$DSM_BENCH_TMP/BENCH_dsm.json"
cargo run -q --offline --release -p parade-bench --bin bench_gate -- \
  "$DSM_BENCH_TMP/BENCH_dsm.json" scripts/bench_baseline/BENCH_dsm.json 20
rm -rf "$DSM_BENCH_TMP"

if cargo fmt --version >/dev/null 2>&1; then
  echo "== cargo fmt --check =="
  cargo fmt --check
else
  echo "== cargo fmt --check skipped (rustfmt not installed) =="
fi

echo "ci: OK"
