//! Cross-crate integration tests: whole-cluster runs spanning the DSM,
//! MPI, runtime, kernels, and translator.

use parade::core::{Cluster, ClusterConfig, ExecConfig};
use parade::kernels::cg::{cg_mpi, cg_parade, cg_sequential, CgClass};
use parade::kernels::ep::{ep_parade, ep_sequential, EpClass};
use parade::kernels::helmholtz::{helmholtz_parade, helmholtz_sequential, HelmholtzParams};
use parade::kernels::md::{md_parade, md_sequential, MdParams};
use parade::net::TimeSource;
use parade::prelude::*;
use parade::translator::{parse, Interp};

fn cluster(nodes: usize, tpn: usize, mode: ProtocolMode) -> Cluster {
    Cluster::builder()
        .nodes(nodes)
        .threads_per_node(tpn)
        .protocol(mode)
        .net(NetProfile::zero())
        .time(TimeSource::Manual)
        .pool_bytes(16 << 20)
        .build()
        .unwrap()
}

#[test]
fn cg_class_s_verifies_sequentially() {
    let r = cg_sequential(CgClass::S);
    assert!(
        r.verify(CgClass::S),
        "zeta {} vs reference {}",
        r.zeta,
        CgClass::S.params().zeta_verify
    );
    assert!(r.rnorm < 1e-10);
}

#[test]
fn cg_class_s_verifies_on_cluster_in_both_modes() {
    for mode in [ProtocolMode::Parade, ProtocolMode::SdsmOnly] {
        let c = cluster(3, 2, mode);
        let (r, report) = cg_parade(&c, CgClass::S);
        assert!(r.verify(CgClass::S), "mode {mode:?}: zeta {}", r.zeta);
        let d = report.cluster.dsm_totals();
        assert!(d.page_fetches > 0, "CG must move pages across nodes");
        assert!(d.barriers > 0);
    }
}

#[test]
fn cg_pure_mpi_baseline_verifies() {
    let cfg = ClusterConfig {
        nodes: 4,
        net: NetProfile::clan_via(),
        time: TimeSource::Manual,
        pool_bytes: 4 << 20,
        ..ClusterConfig::default()
    };
    let (r, vt) = cg_mpi(cfg, CgClass::S);
    assert!(r.verify(CgClass::S), "zeta {}", r.zeta);
    // With a real network profile the allgathers/allreduces cost time.
    assert!(vt > parade::net::VTime::ZERO);
}

#[test]
fn cg_migratory_home_reduces_traffic() {
    let mk = |policy| {
        let cfg = ClusterConfig {
            nodes: 4,
            exec: ExecConfig::OneThreadTwoCpu,
            net: NetProfile::zero(),
            time: TimeSource::Manual,
            home_policy: Some(policy),
            pool_bytes: 16 << 20,
            ..ClusterConfig::default()
        };
        let (r, report) = cg_parade(&Cluster::from_config(cfg), CgClass::S);
        assert!(r.verify(CgClass::S));
        report.cluster.dsm_totals()
    };
    let migr = mk(parade::dsm::HomePolicy::Migratory);
    let fixed = mk(parade::dsm::HomePolicy::Fixed);
    assert!(
        migr.diffs_sent < fixed.diffs_sent,
        "migratory {} vs fixed {} diffs",
        migr.diffs_sent,
        fixed.diffs_sent
    );
}

/// The bulk-fetch shape of a CG class-S sweep is pinned: whole-vector
/// reads must coalesce their cold misses into `ReqPageRange` trips, and
/// CG's one-bulk-call-per-vector pattern gives the stride predictor no
/// inter-fault stride to learn, so speculative prefetch stays silent.
/// A drift in either counter means the adaptive hot path changed shape —
/// rerun `figures -- adapt-smoke` and re-pin deliberately.
#[test]
fn cg_bulk_fetch_counters_are_pinned() {
    let cfg = ClusterConfig {
        nodes: 4,
        exec: ExecConfig::OneThreadTwoCpu,
        net: NetProfile::clan_via(),
        time: TimeSource::Manual,
        ..ClusterConfig::default()
    };
    let (r, report) = cg_parade(&Cluster::from_config(cfg), CgClass::S);
    assert!(r.verify(CgClass::S), "zeta {}", r.zeta);
    let d = report.cluster.dsm_totals();
    assert_eq!(
        (d.range_fetches, d.range_fetch_pages, d.prefetch_hits),
        (17, 181, 0),
        "bulk-fetch shape drifted (range trips, pages, speculative hits)",
    );
}

#[test]
fn ep_parallel_matches_sequential_and_scales_traffic_free() {
    let class = EpClass::Custom(19);
    let seq = ep_sequential(class);
    let c = cluster(4, 2, ProtocolMode::Parade);
    let (par, report) = ep_parade(&c, class);
    assert!((par.sx - seq.sx).abs() < 1e-9);
    assert!((par.sy - seq.sy).abs() < 1e-9);
    assert_eq!(par.q, seq.q);
    // EP shares almost nothing: no page traffic at all.
    assert_eq!(report.cluster.dsm_totals().page_fetches, 0);
}

#[test]
fn helmholtz_parallel_matches_sequential() {
    let p = HelmholtzParams::sized(40, 40, 60);
    let seq = helmholtz_sequential(p);
    for mode in [ProtocolMode::Parade, ProtocolMode::SdsmOnly] {
        let c = cluster(2, 2, mode);
        let (par, _) = helmholtz_parade(&c, p);
        assert_eq!(par.iters, seq.iters, "mode {mode:?}");
        assert!(
            (par.error - seq.error).abs() <= 1e-12 + 1e-9 * seq.error,
            "mode {mode:?}: {} vs {}",
            par.error,
            seq.error
        );
    }
}

#[test]
fn md_parallel_matches_sequential_across_cluster_shapes() {
    let p = MdParams::sized(40, 4);
    let seq = md_sequential(p);
    for (nodes, tpn) in [(1, 1), (2, 1), (2, 2), (4, 2)] {
        let c = cluster(nodes, tpn, ProtocolMode::Parade);
        let (par, _) = md_parade(&c, p);
        assert!(
            (par.last.total() - seq.last.total()).abs() < 1e-9,
            "{nodes}x{tpn}"
        );
    }
}

#[test]
fn parade_beats_sdsm_on_synchronization_heavy_run() {
    // The headline claim: for synchronization-dominated work the hybrid
    // runtime outperforms the conventional SDSM lowering.
    let run = |mode| {
        let cfg = ClusterConfig {
            nodes: 4,
            exec: ExecConfig::OneThreadTwoCpu,
            protocol: mode,
            net: NetProfile::clan_via(),
            time: TimeSource::Manual,
            pool_bytes: 4 << 20,
            ..ClusterConfig::default()
        };
        let cluster = Cluster::from_config(cfg);
        let (_, report) = cluster.run_with_report(|g| {
            let s = g.alloc_scalar_f64();
            g.parallel(move |tc| {
                for _ in 0..50 {
                    tc.atomic_add_f64(&s, 1.0);
                }
            });
            g.scalar_get_f64(&s)
        });
        report.exec_time
    };
    let parade = run(ProtocolMode::Parade);
    let sdsm = run(ProtocolMode::SdsmOnly);
    assert!(
        parade < sdsm,
        "hybrid {parade} should beat lock-based {sdsm}"
    );
}

#[test]
fn one_thread_one_cpu_is_slowest_on_communication_heavy_work() {
    // Figure 8's configuration ordering on a fetch-heavy workload.
    let run = |exec: ExecConfig| {
        let cfg = ClusterConfig {
            nodes: 4,
            exec,
            net: NetProfile::clan_via(),
            time: TimeSource::Manual,
            pool_bytes: 8 << 20,
            ..ClusterConfig::default()
        };
        let cluster = Cluster::from_config(cfg);
        let n = 64 * 512; // 64 pages
        let (_, report) = cluster.run_with_report(move |g| {
            let v = g.alloc_f64(n);
            g.parallel(move |tc| {
                // Round-robin writers force steady cross-node fetches.
                for round in 0..6 {
                    let writer = round % tc.num_nodes();
                    if tc.node() == writer && tc.local_thread() == 0 {
                        for p in 0..64 {
                            tc.set(&v, p * 512, round as f64);
                        }
                    }
                    tc.barrier();
                    let mut acc = 0.0;
                    for p in 0..64 {
                        acc += tc.get(&v, p * 512);
                    }
                    std::hint::black_box(acc);
                    tc.barrier();
                }
            });
        });
        report.exec_time
    };
    let t11 = run(ExecConfig::OneThreadOneCpu);
    let t12 = run(ExecConfig::OneThreadTwoCpu);
    assert!(
        t11 > t12,
        "1T1C ({t11}) must be slower than 1T2C ({t12}) when communication dominates"
    );
}

#[test]
fn translated_openmp_program_runs_on_cluster() {
    let src = r#"
int main() {
    int i;
    double dot = 0.0;
    double a[300];
    double b[300];
    #pragma omp parallel for
    for (i = 0; i < 300; i++) { a[i] = i; b[i] = 2.0; }
    #pragma omp parallel for reduction(+: dot)
    for (i = 0; i < 300; i++) dot += a[i] * b[i];
    printf("%.1f\n", dot);
    return 0;
}
"#;
    let prog = parse(src).unwrap();
    let c = cluster(2, 2, ProtocolMode::Parade);
    let out = Interp::new(prog).run(&c).unwrap();
    let expect: f64 = (0..300).map(|i| i as f64 * 2.0).sum();
    assert_eq!(out.stdout.trim(), format!("{expect:.1}"));
}

#[test]
fn run_report_virtual_times_are_consistent() {
    let c = cluster(3, 1, ProtocolMode::Parade);
    let (_, report) = c.run_with_report(|g| {
        let v = g.alloc_f64(1000);
        g.parallel(move |tc| {
            tc.par_for(0..1000, |i| tc.set(&v, i, 1.0));
        });
    });
    assert_eq!(report.node_times.len(), 3);
    // All nodes end at a barrier-coordinated shutdown; times are nonzero
    // and within the same order of magnitude.
    for &t in &report.node_times {
        assert!(t > parade::net::VTime::ZERO);
    }
}

#[test]
fn heterogeneous_node_speeds_are_supported() {
    let cfg = ClusterConfig {
        nodes: 2,
        node_speed: Some(ClusterConfig::paper_node_speeds(2)),
        net: NetProfile::zero(),
        pool_bytes: 4 << 20,
        ..ClusterConfig::default()
    };
    let cluster = Cluster::from_config(cfg);
    let sum = cluster.run(|g| g.parallel(|tc| tc.reduce_f64_sum(1.0)));
    assert_eq!(sum, cluster.config().total_threads() as f64);
}

// ---------------------------------------------------------------------------
// Hierarchical collectives: pinned fabric message counts.
// ---------------------------------------------------------------------------

/// Total fabric messages for a fixed collective-only workload: 8 team
/// barriers plus one reduction, no shared-page traffic.
fn collective_message_count(nodes: usize, tpn: usize, hierarchical: bool) -> u64 {
    let c = Cluster::builder()
        .nodes(nodes)
        .threads_per_node(tpn)
        .net(NetProfile::zero())
        .time(TimeSource::Manual)
        .pool_bytes(4 << 20)
        .hierarchical_collectives(hierarchical)
        .build()
        .unwrap();
    let (_, report) = c.run_with_report(|g| {
        g.parallel(|tc| {
            for _ in 0..8 {
                tc.barrier();
            }
            tc.reduce_f64_sum(1.0)
        })
    });
    report.cluster.traffic.msgs
}

/// The exact wire cost of the two-level collectives is pinned: a silent
/// fallback to the flat algorithms (or an extra per-arrival hop sneaking
/// back in) changes these totals and must fail CI, not drift silently.
#[test]
fn hierarchical_collective_message_counts_are_pinned() {
    // Per barrier round at N nodes the tree costs 3N-1 messages (N local
    // arrivals handed to each node's own communication thread, N-1
    // aggregated BarrierUps, N departures) vs the flat 2N; the workload
    // executes 10 rounds in total (8 explicit barriers plus the team's
    // entry/exit synchronization around the reduction).
    let c44 = collective_message_count(4, 4, true);
    assert_eq!(c44, 122, "4 nodes x 4 threads, hierarchical");
    assert_eq!(
        collective_message_count(8, 2, true),
        258,
        "8 nodes x 2 threads, hierarchical"
    );
    assert_eq!(
        collective_message_count(4, 1, true),
        c44,
        "compute threads funnel through the node barrier: fabric traffic \
         must not depend on threads-per-node"
    );
    // The flat baseline has a different (smaller) wire footprint; if the
    // hierarchical path silently fell back to it, the pins above would
    // still pass only by coincidence — rule that out explicitly.
    assert_eq!(collective_message_count(4, 4, false), 92, "flat baseline");
}
