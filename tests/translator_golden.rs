//! Golden tests of the translator output for the paper's Figure 2
//! (critical) and Figure 3 (single), in both runtime dialects. These pin
//! the exact shape of the emitted code; update deliberately if the
//! emitter changes.

use parade::translator::{parse, translate_default, EmitMode};

const FIG2_SOURCE: &str = r#"int main() {
    double sum = 0.0;
    double local = 1.5;
    #pragma omp parallel firstprivate(local)
    {
        #pragma omp critical
        { sum = sum + local; }
    }
    return 0;
}
"#;

const FIG3_SOURCE: &str = r#"int main() {
    double tol = 0.0;
    #pragma omp parallel
    {
        #pragma omp single
        { tol = 1e-7; }
    }
    return 0;
}
"#;

fn emitted(src: &str, mode: EmitMode) -> String {
    translate_default(&parse(src).unwrap(), mode).unwrap()
}

#[test]
fn figure2_parade_translation() {
    let out = emitted(FIG2_SOURCE, EmitMode::Parade);
    // Hierarchical mutual exclusion: pthread lock intra-node...
    assert!(
        out.contains("pthread_mutex_lock(&__parade_node_mutex);"),
        "{out}"
    );
    assert!(
        out.contains("__parade_local_acc_double(&sum, PARADE_SUM, local__fp);"),
        "{out}"
    );
    assert!(
        out.contains("pthread_mutex_unlock(&__parade_node_mutex);"),
        "{out}"
    );
    // ...collective update inter-node, no SDSM lock anywhere.
    assert!(
        out.contains("parade_allreduce_double(&sum, PARADE_SUM);"),
        "{out}"
    );
    assert!(!out.contains("sdsm_lock"), "{out}");
    // Region extraction happened.
    assert!(
        out.contains("static void __parade_region_0(void *__arg)"),
        "{out}"
    );
    assert!(
        out.contains("parade_parallel(__parade_region_0, &__a0);"),
        "{out}"
    );
}

#[test]
fn figure2_sdsm_translation() {
    let out = emitted(FIG2_SOURCE, EmitMode::Sdsm);
    assert!(out.contains("sdsm_lock(0);"), "{out}");
    assert!(out.contains("(*sum) = ((*sum) + local__fp);"), "{out}");
    assert!(out.contains("sdsm_unlock(0);"), "{out}");
    assert!(!out.contains("allreduce"), "{out}");
    assert!(!out.contains("pthread"), "{out}");
}

#[test]
fn figure3_parade_translation() {
    let out = emitted(FIG3_SOURCE, EmitMode::Parade);
    assert!(out.contains("if (parade_single_begin(0))"), "{out}");
    assert!(out.contains("if (parade_node() == 0)"), "{out}");
    assert!(out.contains("parade_bcast(&tol, sizeof(tol), 0);"), "{out}");
    // The ParADE single avoids the barrier entirely.
    assert!(!out.contains("parade_barrier();"), "{out}");
    assert!(!out.contains("sdsm_barrier();"), "{out}");
}

#[test]
fn figure3_sdsm_translation() {
    let out = emitted(FIG3_SOURCE, EmitMode::Sdsm);
    assert!(out.contains("sdsm_lock(0);"), "{out}");
    assert!(out.contains("if (!sdsm_flag_test_and_set(0))"), "{out}");
    assert!(out.contains("sdsm_barrier();"), "{out}");
}

#[test]
fn both_modes_emit_parsable_structure() {
    for mode in [EmitMode::Parade, EmitMode::Sdsm] {
        for src in [FIG2_SOURCE, FIG3_SOURCE] {
            let out = emitted(src, mode);
            // Braces balance (a cheap well-formedness check).
            let opens = out.matches('{').count();
            let closes = out.matches('}').count();
            assert_eq!(opens, closes, "mode {mode:?}\n{out}");
        }
    }
}

#[test]
fn threshold_controls_the_protocol_split() {
    // At threshold 0 nothing is "small": ParADE must fall back to the
    // lock path even for a scalar critical (§5.2.1 threshold semantics).
    let prog = parse(FIG2_SOURCE).unwrap();
    let out = parade::translator::translate(&prog, EmitMode::Parade, 0).unwrap();
    assert!(out.contains("parade_lock(0);"), "{out}");
    assert!(!out.contains("allreduce"), "{out}");
}
