//! Integration tests for the multi-job serving layer: gang scheduling,
//! FIFO + backfill admission, per-job sub-fabric isolation, and
//! checkpoint/re-home survival of injected node death.
//!
//! The correctness bar everywhere is *exactly-once, bit-identical*: every
//! job completes exactly once and its digest equals the sequential
//! reference, no matter which nodes died or how lossy the wire was.

use std::collections::BTreeMap;
use std::time::Duration;

use parade::net::{ChaosProfile, VTime};
use parade::serve::{serve, soak, JobKind, JobSpec, LinkDeath, ServeConfig, SoakConfig};
use parade_testkit::prelude::*;

const SOAK: Duration = Duration::from_secs(300);

// ---------------------------------------------------------------------------
// Soak: many jobs, scheduled deaths, lossy wire — exactly once, bit-identical.
// ---------------------------------------------------------------------------

#[test]
fn soak_survives_scheduled_node_deaths_exactly_once() {
    run_with_timeout("serve-soak", SOAK, || {
        // One in four jobs is scheduled to lose a node mid-run, on top of
        // a seeded lossy wire on every sub-fabric. (`PARADE_CHAOS` runs
        // exercise this same path through the `figures serve-soak` smoke;
        // here the schedule is pinned so the assertions are exact.)
        let cfg = SoakConfig {
            jobs: 120,
            machine_nodes: 10,
            death_every: 4,
            chaos: ChaosProfile::lossy(0x5EED_CAFE),
            ..SoakConfig::default()
        };
        let s = soak(&cfg);
        assert!(
            s.ok(),
            "soak must stay exactly-once and bit-identical: {s:?}"
        );
        assert_eq!(s.completed_once, 120, "{s:?}");
        assert!(s.rehomed_jobs >= 1, "the death schedule never fired: {s:?}");
        assert!(s.dead_nodes >= 1, "dead nodes must be power-cycled: {s:?}");
    });
}

#[test]
fn soak_results_are_deterministic_across_runs() {
    run_with_timeout("serve-soak-determinism", SOAK, || {
        // *Results* are exact across runs: every job completes exactly
        // once with the reference digest, no matter the host schedule.
        // Re-home counts are deliberately NOT compared: a scheduled death
        // fires only if its link carries `after_seq` messages before the
        // job finishes, and per-link message counts vary with OS thread
        // interleaving inside the DSM protocol — so whether a given death
        // fires (and thus how many jobs re-home) is schedule-dependent,
        // while the bits of every result never are.
        let cfg = SoakConfig {
            jobs: 60,
            machine_nodes: 8,
            death_every: 5,
            chaos: ChaosProfile::lossy(0xD1CE),
            ..SoakConfig::default()
        };
        let (a, b) = (soak(&cfg), soak(&cfg));
        assert!(a.ok() && b.ok(), "{a:?} / {b:?}");
        assert_eq!(a.completed_once, b.completed_once);
        assert_eq!(a.completed_once, 60);
        assert_eq!(a.digest_mismatches, 0);
        assert_eq!(b.digest_mismatches, 0);
        assert!(a.rehomed_jobs >= 1 && b.rehomed_jobs >= 1, "{a:?} / {b:?}");
    });
}

// ---------------------------------------------------------------------------
// Property: a job killed and re-homed at a random barrier is bit-identical
// to the unfaulted run (satellite 4).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct DeathCase {
    kind: JobKind,
    width: usize,
    death: LinkDeath,
}

// A failing case is already minimal (one job, one death); re-running a
// smaller job wouldn't localize anything, so don't shrink.
impl Shrink for DeathCase {}

/// A random job shape plus a random mid-run link death: the victim rank,
/// and the message count after which the link dies (which interval the
/// death lands in therefore varies case to case).
fn death_case(r: &mut TestRng) -> DeathCase {
    let width = 2 + r.range_usize(0, 1);
    let kind = match r.next_u64() % 3 {
        0 => JobKind::CgLite {
            n: 24,
            intervals: 4,
            seed: 7 + r.next_u64() % 1000,
        },
        1 => JobKind::EpBlocks {
            batches: 4,
            pairs_per_batch: 64,
            seed: 11 + r.next_u64() % 1000,
        },
        _ => JobKind::Nbody {
            np: 12,
            steps: 4,
            seed: 13 + r.next_u64() % 1000,
        },
    };
    let death = LinkDeath {
        src: 0,
        dst: 1 + (r.next_u64() as usize) % (width - 1),
        after_seq: 4 + r.next_u64() % 16,
    };
    DeathCase { kind, width, death }
}

prop!(cases = 4, fn killed_and_rehomed_job_matches_the_unfaulted_run(case in death_case) {
    run_with_timeout("serve-rehome-prop", SOAK, move || {
        let spec = JobSpec {
            id: 0,
            kind: case.kind,
            min_width: case.width,
            max_width: case.width,
            submit_at: VTime::ZERO,
        };
        // machine = gang + one spare, so the re-home lands on a fresh node.
        let machine_nodes = case.width + 1;
        let clean = serve(
            &ServeConfig {
                machine_nodes,
                ..ServeConfig::default()
            },
            vec![spec.clone()],
        );
        let faulted = serve(
            &ServeConfig {
                machine_nodes,
                deaths: BTreeMap::from([(0u64, case.death)]),
                ..ServeConfig::default()
            },
            vec![spec.clone()],
        );
        let reference = spec.kind.reference_digest();
        let (c, f) = (&clean.outcomes[0], &faulted.outcomes[0]);
        assert_eq!(c.completions, 1, "{case:?}");
        assert_eq!(f.completions, 1, "{case:?}");
        assert!(f.attempts >= 2, "death never fired: {case:?} {f:?}");
        assert!(!f.rehomed.is_empty(), "{case:?} {f:?}");
        assert_eq!(c.digest, reference, "unfaulted run drifted: {case:?}");
        assert_eq!(
            f.digest, reference,
            "killed-and-re-homed run must be bit-identical: {case:?}"
        );
        assert_eq!(faulted.dead_nodes.len(), 1, "{case:?}");
    });
});

// ---------------------------------------------------------------------------
// Fail-stop teardown regression: ranks parked on DSM page condvars must be
// released when a link dies, not left blocked forever (satellite 2).
// ---------------------------------------------------------------------------

#[test]
fn fail_stop_teardown_unparks_dsm_page_waiters() {
    // Regression for a shutdown deadlock: compute threads parked on
    // per-page DSM condvars (mid read/write fault, or awaiting a re-home
    // push) were never woken when the comm thread exited on a dead link —
    // the join below then hung forever. The DSM engine now wakes every
    // page waiter at comm-thread exit and page waits fail stop after
    // shutdown. `run_with_timeout` turns any reintroduced hang into a
    // loud, bounded failure.
    run_with_timeout("serve-fail-stop-teardown", SOAK, || {
        let spec = JobSpec {
            id: 0,
            kind: JobKind::CgLite {
                n: 32,
                intervals: 4,
                seed: 9,
            },
            min_width: 3,
            max_width: 3,
            submit_at: VTime::ZERO,
        };
        // The link dies almost immediately, while the other gang ranks are
        // still parked inside the first interval's page faults.
        let cfg = ServeConfig {
            machine_nodes: 4,
            deaths: BTreeMap::from([(
                0u64,
                LinkDeath {
                    src: 0,
                    dst: 2,
                    after_seq: 4,
                },
            )]),
            ..ServeConfig::default()
        };
        let report = serve(&cfg, vec![spec.clone()]);
        let o = &report.outcomes[0];
        assert_eq!(o.completions, 1, "{o:?}");
        assert!(o.attempts >= 2, "death never fired: {o:?}");
        assert_eq!(o.digest, spec.kind.reference_digest(), "{o:?}");
        assert_eq!(report.dead_nodes, vec![o.rehomed[0].0], "{report:?}");
    });
}
