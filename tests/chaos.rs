//! Chaos soak suite: the fabric's fault injection + reliable channel,
//! exercised end to end (tier-1).
//!
//! Every test here runs a deterministic fault schedule (pinned or
//! property-derived seeds) and is bounded by the parade-testkit deadlock
//! watchdog, so a protocol bug surfaces as a diagnostic failure rather
//! than a hung CI job. The headline claims, per the reliable-channel
//! design:
//!
//! * arbitrary drop/duplicate/reorder/delay schedules still deliver every
//!   message exactly once, in per-link order;
//! * MPI collectives and full DSM kernels (NPB CG, Helmholtz) compute
//!   **bit-identical** results under chaos, because fault recovery only
//!   reshuffles virtual time, never payloads;
//! * a dead link (retry budget exhausted) fails fast with a structured
//!   [`FabricError`] naming the link and the pending operation, within a
//!   provable virtual-time bound, and the error reaches the run's
//!   [`StatsReport`].

use std::time::Duration;

use parade::cluster::{launch, ClusterConfig, NodeEnv};
use parade::core::{Cluster, StatsReport};
use parade::kernels::cg::{cg_parade, CgClass};
use parade::kernels::helmholtz::{helmholtz_parade, HelmholtzParams};
use parade::mpi::{Communicator, ReduceOp};
use parade::net::{
    Bytes, ChaosKnobs, ChaosProfile, Fabric, Match, MsgClass, NetProfile, TimeSource, VClock, VTime,
};
use parade_testkit::prelude::*;

/// Soak-wide watchdog budget. Generous in real time — these workloads
/// finish in seconds; the bound only exists to convert a protocol hang
/// (virtual time stuck) into a diagnosable failure.
const SOAK: Duration = Duration::from_secs(300);

fn payload_for(src: usize, class: MsgClass, tag: u64, len: usize) -> Bytes {
    let stamp = (src as u8) ^ (class.index() as u8) << 4 ^ (tag as u8).wrapping_mul(31);
    let data: Vec<u8> = (0..len.max(1))
        .map(|i| stamp.wrapping_add(i as u8))
        .collect();
    Bytes::copy_from_slice(&data)
}

// ---------------------------------------------------------------------------
// Satellite: exactly-once, in-order delivery for arbitrary chaos profiles.
// ---------------------------------------------------------------------------

prop!(cases = 24, fn chaos_delivery_is_exactly_once_in_order(
    (seed, (drop_m, dup_m, reorder_m), sizes) in |r: &mut TestRng| {
        let seed = r.next_u64();
        // Milli-probabilities. Drop is capped well below the point where a
        // 24-retry budget could plausibly exhaust: the schedule stays
        // adversarial but every message remains deliverable.
        let knobs = (r.below(150), r.below(120), r.below(250));
        let n = r.range_usize(8, 48);
        let sizes: Vec<u64> = (0..n).map(|_| r.below(4096)).collect();
        (seed, knobs, sizes)
    }) {
    let chaos = ChaosProfile {
        seed,
        base: ChaosKnobs {
            drop: drop_m as f64 / 1000.0,
            duplicate: dup_m as f64 / 1000.0,
            reorder: reorder_m as f64 / 1000.0,
            delay: 0.25,
            delay_jitter: VTime::from_micros(40),
        },
        retry_budget: 24,
        ..ChaosProfile::off()
    };
    run_with_timeout("exactly-once", SOAK, move || {
        let fabric = Fabric::with_chaos(2, NetProfile::clan_via(), chaos);
        let tx = fabric.endpoint(0);
        let rx = fabric.endpoint(1);
        let mut clk = VClock::manual();
        for (i, len) in sizes.iter().enumerate() {
            let body = payload_for(0, MsgClass::P2p, i as u64, *len as usize);
            tx.send(1, MsgClass::P2p, i as u64, body, &mut clk);
        }
        let mut prev = VTime::ZERO;
        for (i, len) in sizes.iter().enumerate() {
            let p = rx.recv_any_raw(MsgClass::P2p).unwrap();
            assert_eq!(p.tag, i as u64, "per-link order must survive chaos");
            assert_eq!(
                &p.payload[..],
                &payload_for(0, MsgClass::P2p, i as u64, *len as usize)[..],
                "payload must survive retransmission"
            );
            assert!(p.arrive_at >= prev, "arrival stamps must stay monotone");
            prev = p.arrive_at;
        }
        assert_eq!(rx.queued(MsgClass::P2p), 0, "no duplicate may survive");
        let stats = fabric.stats();
        assert_eq!(
            stats.totals().msgs,
            stats.recv_totals().msgs,
            "exactly one logical receive per logical send"
        );
    });
});

// ---------------------------------------------------------------------------
// Satellite: collectives equal their chaos-free results for arbitrary P.
// ---------------------------------------------------------------------------

/// One deterministic collective workload: `rounds` iterations of
/// barrier → allreduce(sum) → bcast on every rank. Returns each rank's
/// observed values as raw f64 bit patterns, so equality means
/// *bit-identical*, not merely approximately equal.
fn run_collectives(p: usize, rounds: usize, chaos: ChaosProfile) -> Vec<Vec<u64>> {
    run_collectives_placed(p, None, rounds, chaos).0
}

/// [`run_collectives`], optionally over an explicit SMP placement (the
/// two-level leader/member algorithms), also reporting the fabric's
/// (sent, received) logical message totals for exactly-once checks.
fn run_collectives_placed(
    p: usize,
    groups: Option<Vec<Vec<usize>>>,
    rounds: usize,
    chaos: ChaosProfile,
) -> (Vec<Vec<u64>>, u64, u64) {
    use std::sync::Arc;

    use parade::mpi::CollectiveTopology;

    let fabric = Fabric::with_chaos(p, NetProfile::clan_via(), chaos);
    let topo = groups.map(|g| Arc::new(CollectiveTopology::from_groups(p, g)));
    let handles: Vec<_> = (0..p)
        .map(|rank| {
            let ep = fabric.endpoint(rank);
            let comm = match &topo {
                Some(t) => Communicator::with_topology(ep, Arc::clone(t)),
                None => Communicator::new(ep),
            };
            std::thread::spawn(move || {
                let mut clk = VClock::manual();
                let mut seen = Vec::with_capacity(rounds * (p + 1));
                for round in 0..rounds {
                    comm.barrier(&mut clk);
                    let s = comm.allreduce_f64((rank + round) as f64, ReduceOp::Sum, &mut clk);
                    seen.push(s.to_bits());
                    let root = round % p;
                    let mut xs: Vec<f64> = if rank == root {
                        (0..p).map(|i| (round * 31 + i) as f64 * 0.5).collect()
                    } else {
                        vec![0.0; p]
                    };
                    comm.bcast_f64s(root, &mut xs, &mut clk);
                    seen.extend(xs.iter().map(|x| x.to_bits()));
                }
                seen
            })
        })
        .collect();
    let out: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let stats = fabric.stats();
    let (sent, recvd) = (stats.totals().msgs, stats.recv_totals().msgs);
    fabric.begin_shutdown();
    (out, sent, recvd)
}

prop!(cases = 8, fn collectives_match_chaos_free_results(
    (p, seed, rounds) in |r: &mut TestRng| {
        (r.range_usize(2, 6), r.next_u64(), r.range_usize(3, 8))
    }) {
    run_with_timeout("collectives", SOAK, move || {
        let hostile = ChaosProfile {
            seed,
            base: ChaosKnobs {
                drop: 0.08,
                duplicate: 0.04,
                reorder: 0.10,
                delay: 0.15,
                delay_jitter: VTime::from_micros(25),
            },
            ..ChaosProfile::off()
        };
        let chaotic = run_collectives(p, rounds, hostile);
        let clean = run_collectives(p, rounds, ChaosProfile::off());
        assert_eq!(
            chaotic, clean,
            "collectives must be bit-identical under chaos (P={p}, seed={seed:#x})"
        );
        // Cross-check one closed form so both runs can't be wrong together:
        // round 0's allreduce sums 0+1+…+(p-1) on every rank.
        let expect = ((p * (p - 1)) / 2) as f64;
        for rank_log in &clean {
            assert_eq!(rank_log[0], expect.to_bits());
        }
    });
});

// ---------------------------------------------------------------------------
// Satellite: two-level collectives on a lossy 8-node fabric.
// ---------------------------------------------------------------------------

prop!(cases = 6, fn two_level_collectives_survive_lossy_fabric(
    (seed, pick) in |r: &mut TestRng| (r.next_u64(), r.range_usize(0, 3))) {
    run_with_timeout("two-level-chaos", SOAK, move || {
        const P: usize = 8;
        // Representative placements: uniform chassis, a ragged split, and
        // a scattered one whose leaders are not consecutive ranks.
        let placements: [&[&[usize]]; 3] = [
            &[&[0, 1, 2, 3], &[4, 5, 6, 7]],
            &[&[0, 1, 2], &[3, 4, 5], &[6, 7]],
            &[&[0, 4], &[1, 5], &[2, 6], &[3, 7]],
        ];
        let groups: Vec<Vec<usize>> = placements[pick % placements.len()]
            .iter()
            .map(|g| g.to_vec())
            .collect();
        let rounds = 6;
        let (chaotic, sent, recvd) =
            run_collectives_placed(P, Some(groups.clone()), rounds, ChaosProfile::lossy(seed));
        let (clean_flat, ..) = run_collectives_placed(P, None, rounds, ChaosProfile::off());
        assert_eq!(
            chaotic, clean_flat,
            "two-level under chaos must be bit-identical to the clean flat \
             baseline ({groups:?}, seed={seed:#x})"
        );
        // Leader election narrows the fabric traffic to the leader ranks,
        // but must not break the reliable channel underneath: every
        // logical send is received exactly once despite drops/dups.
        assert_eq!(sent, recvd, "exactly-once among leaders ({groups:?})");
    });
});

// ---------------------------------------------------------------------------
// Satellite: systematic (class, src, tag) matching under permuted receives.
// ---------------------------------------------------------------------------

prop!(cases = 16, fn matching_survives_any_receive_permutation_under_chaos(
    (seed, order_seed) in |r: &mut TestRng| (r.next_u64(), r.next_u64())) {
    run_with_timeout("matching", SOAK, move || {
        const NODES: usize = 4;
        const TAGS: u64 = 3;
        const CLASSES: [MsgClass; 4] =
            [MsgClass::Dsm, MsgClass::P2p, MsgClass::Coll, MsgClass::Ctl];
        let fabric = Fabric::with_chaos(
            NODES,
            NetProfile::clan_via(),
            ChaosProfile::lossy(seed),
        );
        // Every (class, src, tag) combination sent concurrently to node 0.
        let senders: Vec<_> = (1..NODES)
            .map(|src| {
                let ep = fabric.endpoint(src);
                std::thread::spawn(move || {
                    let mut clk = VClock::manual();
                    for class in CLASSES {
                        for tag in 0..TAGS {
                            let body = payload_for(src, class, tag, 24 + src + tag as usize);
                            ep.send(0, class, tag, body, &mut clk);
                        }
                    }
                })
            })
            .collect();
        for s in senders {
            s.join().unwrap();
        }
        // Receive in an arbitrary order: the mailbox must match on
        // (class, src, tag) regardless of both the wire's reordering and
        // the receiver's own draining order.
        let mut order: Vec<(MsgClass, usize, u64)> = CLASSES
            .iter()
            .flat_map(|&c| (1..NODES).flat_map(move |s| (0..TAGS).map(move |t| (c, s, t))))
            .collect();
        let mut shuffle = TestRng::new(order_seed);
        for i in (1..order.len()).rev() {
            order.swap(i, shuffle.below(i as u64 + 1) as usize);
        }
        let rx = fabric.endpoint(0);
        for (class, src, tag) in order {
            let p = rx.recv_raw(class, Match::src_tag(src, tag)).unwrap();
            assert_eq!((p.src, p.tag), (src, tag));
            assert_eq!(
                &p.payload[..],
                &payload_for(src, class, tag, 24 + src + tag as usize)[..]
            );
        }
        for class in CLASSES {
            assert_eq!(rx.queued(class), 0, "{class:?} mailbox must drain");
        }
        let stats = fabric.stats();
        assert_eq!(stats.totals().msgs, stats.recv_totals().msgs);
    });
});

// ---------------------------------------------------------------------------
// Satellite: full kernels are bit-identical under a pinned lossy schedule.
// ---------------------------------------------------------------------------

fn soak_cluster(chaos: ChaosProfile) -> Cluster {
    Cluster::builder()
        .nodes(4)
        .threads_per_node(2)
        .net(NetProfile::clan_via())
        .time(TimeSource::Manual)
        .chaos(chaos)
        .build()
        .expect("cluster")
}

#[test]
fn cg_class_s_is_bit_identical_under_lossy_chaos() {
    run_with_timeout("cg-chaos", SOAK, || {
        let (clean, _) = cg_parade(&soak_cluster(ChaosProfile::off()), CgClass::S);
        let (chaotic, report) =
            cg_parade(&soak_cluster(ChaosProfile::lossy(0xC6_5EED)), CgClass::S);
        // NPB verification value first, then the stronger claim: chaos
        // recovery must not perturb a single bit of the arithmetic.
        assert!(
            (chaotic.zeta - 8.5971775078648).abs() <= 1e-10,
            "zeta={}",
            chaotic.zeta
        );
        assert_eq!(chaotic.zeta.to_bits(), clean.zeta.to_bits());
        assert_eq!(chaotic.rnorm.to_bits(), clean.rnorm.to_bits());
        assert!(report.cluster.fabric_error.is_none());
        let h = report.cluster.link_health_totals();
        assert!(
            h.retransmits >= 1,
            "a lossy soak must exercise the retransmit path: {h:?}"
        );
    });
}

/// CG class S with the full two-level stack explicitly on (DSM tree
/// barrier + MPI leader collectives over 2-node chassis), on a lossy
/// fabric, against the flat chaos-free baseline. The strongest cross-mode
/// claim: hierarchy and fault recovery together must not flip one bit.
#[test]
fn cg_class_s_bit_identical_with_two_level_collectives_under_chaos() {
    run_with_timeout("cg-chaos-two-level", SOAK, || {
        let flat_clean = Cluster::builder()
            .nodes(4)
            .threads_per_node(2)
            .net(NetProfile::clan_via())
            .time(TimeSource::Manual)
            .hierarchical_collectives(false)
            .build()
            .expect("cluster");
        let hier_lossy = Cluster::builder()
            .nodes(4)
            .threads_per_node(2)
            .net(NetProfile::clan_via())
            .time(TimeSource::Manual)
            .chaos(ChaosProfile::lossy(0xC6_5EED))
            .smp_width(2)
            .build()
            .expect("cluster");
        let (flat, _) = cg_parade(&flat_clean, CgClass::S);
        let (hier, report) = cg_parade(&hier_lossy, CgClass::S);
        assert!(
            (hier.zeta - 8.5971775078648).abs() <= 1e-10,
            "zeta={}",
            hier.zeta
        );
        assert_eq!(hier.zeta.to_bits(), flat.zeta.to_bits());
        assert_eq!(hier.rnorm.to_bits(), flat.rnorm.to_bits());
        assert!(report.cluster.fabric_error.is_none());
        assert!(
            report.cluster.link_health_totals().retransmits >= 1,
            "the lossy schedule must exercise retransmission"
        );
    });
}

/// The adaptive protocol layer on a lossy fabric: whatever mix of
/// invalidations, update pushes, and retransmissions each mode ends up
/// with, CG class S must land on the bits of the clean static-invalidate
/// baseline. Chaos reorders the sharer history's *timing* but never its
/// barrier-interval content, so even the per-page decisions stay aligned.
#[test]
fn protocol_modes_are_bit_identical_under_lossy_chaos() {
    use parade::dsm::ProtoSelect;

    run_with_timeout("proto-chaos", SOAK, || {
        let mk = |proto: ProtoSelect, chaos: ChaosProfile| {
            Cluster::builder()
                .nodes(4)
                .threads_per_node(2)
                .net(NetProfile::clan_via())
                .time(TimeSource::Manual)
                .chaos(chaos)
                .proto_select(proto)
                .build()
                .expect("cluster")
        };
        let (clean, _) = cg_parade(
            &mk(ProtoSelect::AllInvalidate, ChaosProfile::off()),
            CgClass::S,
        );
        for proto in [ProtoSelect::Adaptive, ProtoSelect::AllUpdate] {
            let (chaotic, report) =
                cg_parade(&mk(proto, ChaosProfile::lossy(0x000A_DA97)), CgClass::S);
            assert_eq!(
                chaotic.zeta.to_bits(),
                clean.zeta.to_bits(),
                "{proto:?} under chaos diverged from the clean invalidate baseline"
            );
            assert_eq!(chaotic.rnorm.to_bits(), clean.rnorm.to_bits(), "{proto:?}");
            assert!(report.cluster.fabric_error.is_none());
            assert!(
                report.cluster.link_health_totals().retransmits >= 1,
                "{proto:?}: the lossy schedule must exercise retransmission"
            );
        }
    });
}

#[test]
fn helmholtz_is_bit_identical_under_lossy_chaos() {
    run_with_timeout("helmholtz-chaos", SOAK, || {
        let p = HelmholtzParams::sized(32, 32, 50);
        let (clean, _) = helmholtz_parade(&soak_cluster(ChaosProfile::off()), p);
        let (chaotic, report) =
            helmholtz_parade(&soak_cluster(ChaosProfile::lossy(0x4E1D_A7A5)), p);
        assert_eq!(chaotic.iters, clean.iters);
        assert_eq!(chaotic.error.to_bits(), clean.error.to_bits());
        assert_eq!(
            chaotic.solution_error.to_bits(),
            clean.solution_error.to_bits()
        );
        assert!(report.cluster.fabric_error.is_none());
        let h = report.cluster.link_health_totals();
        assert!(h.retransmits >= 1, "{h:?}");
    });
}

// ---------------------------------------------------------------------------
// Satellite: negative path — a dead link fails fast, loudly, and visibly.
// ---------------------------------------------------------------------------

#[test]
fn dead_link_fails_with_structured_error_within_bounded_virtual_time() {
    run_with_timeout("dead-link", SOAK, || {
        let chaos = ChaosProfile::off().with_link(
            0,
            2,
            ChaosKnobs {
                drop: 1.0,
                ..ChaosKnobs::CALM
            },
        );
        let fabric = Fabric::with_chaos(3, NetProfile::clan_via(), chaos.clone());
        // A receiver parked on an unrelated node: fail-stop shutdown must
        // release it rather than leave it blocked forever.
        let waiter = {
            let ep = fabric.endpoint(1);
            std::thread::spawn(move || ep.recv_any_raw(MsgClass::P2p))
        };
        let mut clk = VClock::manual();
        let err = fabric
            .endpoint(0)
            .send_checked(
                2,
                MsgClass::Dsm,
                9,
                Bytes::copy_from_slice(b"doomed"),
                &mut clk,
            )
            .unwrap_err();
        assert_eq!((err.src, err.dst), (0, 2));
        assert_eq!(err.attempts, chaos.retry_budget + 1);
        // Exhaustion is bounded in *virtual* time: the ARQ gives up at
        // Σ_{k=0}^{budget} rto·backoff^k, never later.
        let bound_ns = chaos.rto.as_nanos()
            * (0..=chaos.retry_budget)
                .map(|k| u64::from(chaos.backoff).pow(k))
                .sum::<u64>();
        assert_eq!(err.gave_up_at, VTime::from_nanos(bound_ns));
        let msg = err.to_string();
        assert!(msg.contains("fabric link 0->2 dead"), "{msg}");
        assert!(msg.contains("DSM protocol request"), "{msg}");
        // Fail-stop: the error sticks in the stats and blocked peers wake.
        assert_eq!(fabric.stats().fabric_error().map(|e| e.dst), Some(2));
        assert!(fabric.stats().link_health_totals().send_failures >= 1);
        assert!(waiter.join().unwrap().is_err(), "shutdown must unblock");
    });
}

#[test]
fn dead_link_error_reaches_the_stats_report() {
    run_with_timeout("dead-link-report", SOAK, || {
        // Kill only the P2p class so the DSM runtime underneath stays
        // healthy; the node program then exercises the doomed class itself.
        let chaos = ChaosProfile::off().with_class(
            MsgClass::P2p,
            ChaosKnobs {
                drop: 1.0,
                ..ChaosKnobs::CALM
            },
        );
        let cfg = ClusterConfig {
            nodes: 2,
            net: NetProfile::clan_via(),
            time: TimeSource::Manual,
            chaos,
            ..ClusterConfig::default()
        };
        let (results, report) = launch(cfg, |env: NodeEnv| {
            let mut clk = env.new_clock();
            // All nodes meet first so nobody is mid-protocol when the
            // doomed send shuts the fabric down.
            env.dsm.barrier(&mut clk);
            if env.node == 0 {
                let ep = env.fabric.endpoint(0);
                ep.send_checked(
                    1,
                    MsgClass::P2p,
                    77,
                    Bytes::copy_from_slice(b"lost cause"),
                    &mut clk,
                )
                .err()
            } else {
                None
            }
        });
        let err = results[0].clone().expect("node 0 must observe the failure");
        assert_eq!((err.src, err.dst, err.tag), (0, 1, 77));
        let err2 = report
            .fabric_error
            .clone()
            .expect("error must reach the report");
        assert_eq!(err2.to_string(), err.to_string());
        // And it must survive all the way into the rendered StatsReport
        // (the same copying StatsReport::from_run performs on a RunReport).
        let sr = StatsReport {
            label: "dead-link".into(),
            exec_time: VTime::ZERO,
            node_times: vec![VTime::ZERO; 2],
            node_compute: Vec::new(),
            node_comm: Vec::new(),
            dsm: report.dsm_totals(),
            net: report.net.clone(),
            link_health: report.link_health.clone(),
            fabric_error: report.fabric_error.clone(),
            fabric_errors: report.fabric_errors.clone(),
            trace: None,
        };
        let text = sr.render();
        assert!(
            text.contains("FABRIC ERROR: fabric link 0->1 dead"),
            "{text}"
        );
        assert!(text.contains("MPI point-to-point message"), "{text}");
        assert!(text.contains("net reliability:"), "{text}");
    });
}

#[test]
fn two_links_dying_in_the_same_interval_are_both_named_in_the_report() {
    run_with_timeout("two-dead-links", SOAK, || {
        // Both node 1 and node 2 lose their link to node 0 in the same
        // interval. Fail-stop shutdown races the two ARQ exhaustions, but
        // the per-link error ledger must keep both — a report naming only
        // whichever error landed first sends the operator to replace the
        // wrong cable.
        let chaos = ChaosProfile::off()
            .with_link_death(1, 0, 2)
            .with_link_death(2, 0, 2);
        let cfg = ClusterConfig {
            nodes: 3,
            net: NetProfile::clan_via(),
            time: TimeSource::Manual,
            chaos,
            ..ClusterConfig::default()
        };
        let (results, report) = launch(cfg, |env: NodeEnv| {
            let mut clk = env.new_clock();
            if env.node == 0 {
                return None;
            }
            let ep = env.fabric.endpoint(env.node);
            let mut seq = 0u64;
            loop {
                let payload = Bytes::copy_from_slice(&[0u8; 8]);
                match ep.send_checked(0, MsgClass::P2p, seq, payload, &mut clk) {
                    Ok(()) => {
                        seq += 1;
                        clk.charge(VTime::from_micros(1));
                    }
                    Err(e) => return Some(e),
                }
            }
        });
        // Each doomed sender observed its *own* link die, not a shared
        // first-wins error.
        for node in [1usize, 2] {
            let e = results[node].clone().expect("doomed sender must fail");
            assert_eq!((e.src, e.dst), (node, 0), "{e}");
        }
        assert_eq!(report.fabric_errors.len(), 2, "{:?}", report.fabric_errors);
        let mut srcs: Vec<usize> = report.fabric_errors.iter().map(|e| e.src).collect();
        srcs.sort_unstable();
        assert_eq!(srcs, vec![1, 2], "both dead links recorded");
        // And the rendered StatsReport names both links.
        let sr = StatsReport {
            label: "two-dead-links".into(),
            exec_time: VTime::ZERO,
            node_times: vec![VTime::ZERO; 3],
            node_compute: Vec::new(),
            node_comm: Vec::new(),
            dsm: report.dsm_totals(),
            net: report.net.clone(),
            link_health: report.link_health.clone(),
            fabric_error: report.fabric_error.clone(),
            fabric_errors: report.fabric_errors.clone(),
            trace: None,
        };
        let text = sr.render();
        assert!(
            text.contains("FABRIC ERROR: fabric link 1->0 dead"),
            "{text}"
        );
        assert!(
            text.contains("FABRIC ERROR: fabric link 2->0 dead"),
            "{text}"
        );
    });
}
