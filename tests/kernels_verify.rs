//! NAS verification tests. The full-class runs are `#[ignore]`d so plain
//! `cargo test` stays fast in debug builds; run them with
//! `cargo test --release -- --ignored`.

use parade::core::Cluster;
use parade::kernels::cg::{cg_parade, cg_sequential, CgClass};
use parade::kernels::ep::{ep_parade, ep_sequential, EpClass};
use parade::kernels::helmholtz::{helmholtz_parade, helmholtz_sequential, HelmholtzParams};
use parade::net::{NetProfile, TimeSource};

/// Small cluster used by the debug-speed smoke tests below.
fn smoke_cluster() -> Cluster {
    Cluster::builder()
        .nodes(2)
        .threads_per_node(2)
        .net(NetProfile::clan_via())
        .time(TimeSource::Manual)
        .build()
        .unwrap()
}

#[test]
fn cg_class_s_zeta_matches_npb() {
    let r = cg_sequential(CgClass::S);
    assert!(
        (r.zeta - 8.5971775078648).abs() <= 1e-10,
        "zeta = {}",
        r.zeta
    );
}

#[test]
#[ignore = "release-speed run: cargo test --release -- --ignored"]
fn cg_class_w_zeta_matches_npb() {
    let r = cg_sequential(CgClass::W);
    assert!(
        (r.zeta - 10.362595087124).abs() <= 1e-10,
        "zeta = {}",
        r.zeta
    );
}

#[test]
#[ignore = "release-speed run: cargo test --release -- --ignored"]
fn cg_class_a_zeta_matches_npb() {
    let r = cg_sequential(CgClass::A);
    assert!(
        (r.zeta - 17.130235054029).abs() <= 1e-10,
        "zeta = {}",
        r.zeta
    );
}

#[test]
#[ignore = "release-speed run: cargo test --release -- --ignored"]
fn ep_class_s_sums_match_npb() {
    let r = ep_sequential(EpClass::S);
    assert_eq!(r.verify(EpClass::S), Some(true), "sx={} sy={}", r.sx, r.sy);
}

// ---------------------------------------------------------------------------
// Debug-speed smoke tests: tiny instances of each kernel run the full
// parallel (DSM + collectives) code path on every plain `cargo test`.
// ---------------------------------------------------------------------------

#[test]
fn cg_class_s_parallel_smoke_matches_npb() {
    let cluster = smoke_cluster();
    let (r, _) = cg_parade(&cluster, CgClass::S);
    assert!(
        (r.zeta - 8.5971775078648).abs() <= 1e-10,
        "zeta = {}",
        r.zeta
    );
}

#[test]
fn ep_custom_parallel_smoke_matches_sequential() {
    // Custom(18) = 4 batches: enough to exercise batch partitioning across
    // 2 nodes x 2 threads while staying debug-fast. No NPB reference exists
    // for custom sizes, so the sequential run is the oracle.
    let class = EpClass::Custom(18);
    let seq = ep_sequential(class);
    let cluster = smoke_cluster();
    let (par, _) = ep_parade(&cluster, class);
    // The hierarchical allreduce sums in a different order than the
    // sequential loop, so the Gaussian sums may differ in the last ulp;
    // the counts must match exactly.
    assert_eq!(par.q, seq.q, "annulus counts diverged");
    assert_eq!(par.gc, seq.gc, "accepted-pair counts diverged");
    assert!(
        ((par.sx - seq.sx) / seq.sx).abs() <= 1e-12,
        "sx diverged: parallel {} vs sequential {}",
        par.sx,
        seq.sx
    );
    assert!(
        ((par.sy - seq.sy) / seq.sy).abs() <= 1e-12,
        "sy diverged: parallel {} vs sequential {}",
        par.sy,
        seq.sy
    );
}

#[test]
fn helmholtz_tiny_parallel_smoke_matches_sequential() {
    let p = HelmholtzParams::sized(32, 32, 50);
    let seq = helmholtz_sequential(p);
    let cluster = smoke_cluster();
    let (par, _) = helmholtz_parade(&cluster, p);
    assert_eq!(par.iters, seq.iters, "iteration counts diverged");
    assert!(
        (par.error - seq.error).abs() <= 1e-12 * seq.error.abs().max(1.0),
        "residuals diverged: parallel {} vs sequential {}",
        par.error,
        seq.error
    );
    assert!(
        (par.solution_error - seq.solution_error).abs()
            <= 1e-12 * seq.solution_error.abs().max(1.0),
        "solution errors diverged: parallel {} vs sequential {}",
        par.solution_error,
        seq.solution_error
    );
}

#[test]
#[ignore = "release-speed run: cargo test --release -- --ignored"]
fn ep_class_a_parallel_verifies_on_8_nodes() {
    let cluster = Cluster::builder()
        .nodes(8)
        .threads_per_node(2)
        .net(NetProfile::clan_via())
        .time(TimeSource::Manual)
        .build()
        .unwrap();
    let (r, _) = parade::kernels::ep::ep_parade(&cluster, EpClass::A);
    assert_eq!(r.verify(EpClass::A), Some(true), "sx={} sy={}", r.sx, r.sy);
}
