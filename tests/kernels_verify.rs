//! NAS verification tests. The full-class runs are `#[ignore]`d so plain
//! `cargo test` stays fast in debug builds; run them with
//! `cargo test --release -- --ignored`.

use parade::core::Cluster;
use parade::kernels::cg::{cg_sequential, CgClass};
use parade::kernels::ep::{ep_sequential, EpClass};
use parade::net::{NetProfile, TimeSource};

#[test]
fn cg_class_s_zeta_matches_npb() {
    let r = cg_sequential(CgClass::S);
    assert!(
        (r.zeta - 8.5971775078648).abs() <= 1e-10,
        "zeta = {}",
        r.zeta
    );
}

#[test]
#[ignore = "release-speed run: cargo test --release -- --ignored"]
fn cg_class_w_zeta_matches_npb() {
    let r = cg_sequential(CgClass::W);
    assert!(
        (r.zeta - 10.362595087124).abs() <= 1e-10,
        "zeta = {}",
        r.zeta
    );
}

#[test]
#[ignore = "release-speed run: cargo test --release -- --ignored"]
fn cg_class_a_zeta_matches_npb() {
    let r = cg_sequential(CgClass::A);
    assert!(
        (r.zeta - 17.130235054029).abs() <= 1e-10,
        "zeta = {}",
        r.zeta
    );
}

#[test]
#[ignore = "release-speed run: cargo test --release -- --ignored"]
fn ep_class_s_sums_match_npb() {
    let r = ep_sequential(EpClass::S);
    assert_eq!(r.verify(EpClass::S), Some(true), "sx={} sy={}", r.sx, r.sy);
}

#[test]
#[ignore = "release-speed run: cargo test --release -- --ignored"]
fn ep_class_a_parallel_verifies_on_8_nodes() {
    let cluster = Cluster::builder()
        .nodes(8)
        .threads_per_node(2)
        .net(NetProfile::clan_via())
        .time(TimeSource::Manual)
        .build()
        .unwrap();
    let (r, _) = parade::kernels::ep::ep_parade(&cluster, EpClass::A);
    assert_eq!(r.verify(EpClass::A), Some(true), "sx={} sy={}", r.sx, r.sy);
}
