//! Static-vs-dynamic agreement on the analyzer corpus.
//!
//! `tests/corpus/` holds three buckets of small OpenMP programs:
//!
//! - `racy/` — programs with real data races. The static analyzer must
//!   report at least one error, AND the interpreter's happens-before
//!   oracle must observe a race when the program actually runs. Because
//!   the oracle is vector-clock based, detection does not depend on the
//!   scheduler exhibiting the bad interleaving — the absence of a
//!   happens-before edge is enough.
//! - `clean/` — correct programs. The analyzer must stay silent and the
//!   oracle must observe nothing over repeated runs.
//! - `conform/` — programs the analyzer must flag but that are not
//!   oracle-checkable: reduction/privatization misuse the runtime
//!   privatizes away, barrier divergence that would deadlock a real run,
//!   and structural errors the interpreter rejects outright. These are
//!   checked statically only.
//!
//! Together the buckets pin the contract from `ISSUE`/DESIGN: no static
//! false negatives on racy programs, no static noise on clean ones, and
//! the documented false-positive budget lives entirely in `conform/`.

use std::path::{Path, PathBuf};
use std::time::Duration;

use parade::check::{check_source, check_source_ast, has_errors, LintId};
use parade::core::Cluster;
use parade::net::TimeSource;
use parade::prelude::*;
use parade::translator::{parse, Interp, RunOutput};
use parade_testkit::prelude::run_with_timeout;

fn corpus_dir(bucket: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(bucket)
}

fn corpus_files(bucket: &str) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir(bucket))
        .expect("corpus dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "c"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "empty corpus bucket {bucket}");
    files
}

fn cluster() -> Cluster {
    Cluster::builder()
        .nodes(2)
        .threads_per_node(2)
        .protocol(ProtocolMode::Parade)
        .net(NetProfile::zero())
        .time(TimeSource::Manual)
        .pool_bytes(8 << 20)
        .build()
        .expect("cluster config")
}

fn run_with_oracle(name: &str, src: &str) -> RunOutput {
    let prog = parse(src).unwrap_or_else(|e| panic!("{name}: parse error: {e}"));
    let name = name.to_string();
    run_with_timeout(&name.clone(), Duration::from_secs(60), move || {
        let c = cluster();
        Interp::new(prog)
            .with_oracle()
            .run(&c)
            .unwrap_or_else(|e| panic!("{name}: runtime error: {e}"))
    })
}

#[test]
fn racy_programs_flagged_by_both_static_pass_and_oracle() {
    for f in corpus_files("racy") {
        let name = f.file_name().unwrap().to_string_lossy().to_string();
        let src = std::fs::read_to_string(&f).expect("read corpus file");
        let diags = check_source(&src).unwrap_or_else(|e| panic!("{name}: parse error: {e}"));
        assert!(
            has_errors(&diags),
            "{name}: static pass missed the race (diags: {diags:?})"
        );
        let out = run_with_oracle(&name, &src);
        assert_eq!(out.exit, 0, "{name}: program failed: {}", out.stdout);
        assert!(
            !out.races.is_empty(),
            "{name}: happens-before oracle observed no race"
        );
    }
}

#[test]
fn clean_programs_pass_both_static_pass_and_oracle() {
    for f in corpus_files("clean") {
        let name = f.file_name().unwrap().to_string_lossy().to_string();
        let src = std::fs::read_to_string(&f).expect("read corpus file");
        let diags = check_source(&src).unwrap_or_else(|e| panic!("{name}: parse error: {e}"));
        assert!(diags.is_empty(), "{name}: static false positive: {diags:?}");
        for trial in 0..3 {
            let out = run_with_oracle(&name, &src);
            assert_eq!(out.exit, 0, "{name}: program failed: {}", out.stdout);
            assert!(
                out.races.is_empty(),
                "{name} (trial {trial}): oracle false positive: {:?}",
                out.races
            );
        }
    }
}

#[test]
fn conform_programs_flagged_statically() {
    // file -> the lint that must appear (other lints may ride along).
    let expect: &[(&str, LintId)] = &[
        ("barrier_in_single.c", LintId::BarrierPlacement),
        ("barrier_thread_dep.c", LintId::BarrierPlacement),
        ("barrier_in_for.c", LintId::BarrierPlacement),
        ("reduction_wrong_op.c", LintId::ReductionMisuse),
        ("reduction_read_outside.c", LintId::ReductionMisuse),
        ("private_uninit.c", LintId::PrivateUninitRead),
        ("orphan_for.c", LintId::DirectiveStructure),
        ("nested_parallel.c", LintId::DirectiveStructure),
        ("non_canonical.c", LintId::DirectiveStructure),
        ("bad_atomic.c", LintId::DirectiveStructure),
        ("unknown_clause_var.c", LintId::DirectiveStructure),
        ("barrier_in_task.c", LintId::DirectiveStructure),
        ("barrier_divergent_break.c", LintId::BarrierDivergence),
        ("task_depend_cycle.c", LintId::TaskDependCycle),
    ];
    let files = corpus_files("conform");
    assert_eq!(
        files.len(),
        expect.len(),
        "conform bucket and expectation table out of sync"
    );
    for f in &files {
        let name = f.file_name().unwrap().to_string_lossy().to_string();
        let src = std::fs::read_to_string(f).expect("read corpus file");
        let diags = check_source(&src).unwrap_or_else(|e| panic!("{name}: parse error: {e}"));
        let want = expect
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("{name}: not in expectation table"))
            .1;
        assert!(
            diags.iter().any(|d| d.lint == want),
            "{name}: expected {} among {diags:?}",
            want.code()
        );
    }
}

#[test]
fn ast_and_mir_analyzers_agree_on_whole_corpus() {
    // The MIR analyzer replays the same region state machine the AST walk
    // drives, so for PC001-PC008 the two must produce byte-identical
    // diagnostics — spans, messages, and order — on every corpus program.
    // Only the flow-sensitive lints (PC009/PC010) are MIR-exclusive.
    for bucket in ["racy", "clean", "conform"] {
        for f in corpus_files(bucket) {
            let name = f.file_name().unwrap().to_string_lossy().to_string();
            let src = std::fs::read_to_string(&f).expect("read corpus file");
            let mir: Vec<_> = check_source(&src)
                .unwrap_or_else(|e| panic!("{name}: parse error: {e}"))
                .into_iter()
                .filter(|d| {
                    d.lint != LintId::BarrierDivergence && d.lint != LintId::TaskDependCycle
                })
                .collect();
            let ast = check_source_ast(&src).unwrap_or_else(|e| panic!("{name}: parse error: {e}"));
            assert_eq!(mir, ast, "{bucket}/{name}: analyzer parity drift");
        }
    }
}

#[test]
fn racy_verdicts_survive_repeated_runs() {
    // The oracle is happens-before based, so a race must be reported on
    // EVERY run, not just unlucky interleavings. Spot-check the two
    // subtlest programs.
    for name in ["nowait_read.c", "loop_carried.c"] {
        let path = corpus_dir("racy").join(name);
        let src = std::fs::read_to_string(&path).expect("read corpus file");
        for trial in 0..3 {
            let out = run_with_oracle(name, &src);
            assert!(
                !out.races.is_empty(),
                "{name} (trial {trial}): oracle missed the race"
            );
        }
    }
}
