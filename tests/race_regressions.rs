//! Regression tests for two multi-threaded-SDSM protocol races found (and
//! fixed) during bring-up — the store-side cousins of the paper's §5.1
//! atomic page update problem. Both produced silent data corruption in
//! NAS CG under the baseline (SdsmOnly) mode before the fixes.

use parade::core::Cluster;
use parade::net::TimeSource;
use parade::prelude::*;

fn cluster(nodes: usize, tpn: usize, mode: ProtocolMode) -> Cluster {
    Cluster::builder()
        .nodes(nodes)
        .threads_per_node(tpn)
        .protocol(mode)
        .net(NetProfile::zero())
        .time(TimeSource::Manual)
        .pool_bytes(8 << 20)
        .build()
        .unwrap()
}

/// Race 1: a lock release flushes the node's dirty pages (snapshotting
/// them for diffs) while a *sibling thread* keeps storing through the
/// write fast path. A store landing between the snapshot and the
/// READ_ONLY downgrade used to vanish: it was neither in the shipped diff
/// nor in the twin taken at the next write fault.
#[test]
fn sibling_stores_survive_concurrent_lock_release_flush() {
    for trial in 0..5 {
        let c = cluster(2, 2, ProtocolMode::SdsmOnly);
        let n = 2048usize; // 4 pages of f64
        let rounds = 30usize;
        let ok = c.run(move |g| {
            let v = g.alloc_f64(n);
            let total = g.alloc_scalar_f64();
            g.parallel(move |tc| {
                // Thread 0 of node 0 churns lock acquire/release (each
                // release flushes every dirty page of the node) while its
                // sibling thread writes vector elements back-to-back.
                if tc.local_thread() == 0 {
                    for _ in 0..rounds {
                        tc.atomic_add_f64(&total, 1.0);
                    }
                } else {
                    // Writers: every element of the node's half, many
                    // passes, final pass writes the checkable value.
                    let mine = parade::core::partition(0..n, tc.num_nodes(), tc.node());
                    for pass in 0..rounds {
                        for i in mine.clone() {
                            tc.set(&v, i, (pass * n + i) as f64);
                        }
                    }
                    // Siblings of the atomic loop must still participate
                    // in the collectives it issued.
                    for _ in 0..rounds {
                        tc.atomic_add_f64(&total, 1.0);
                    }
                }
                if tc.local_thread() == 0 {
                    // Match the writers' atomic participation.
                }
                tc.barrier();
                // Every thread verifies the final pass from its own node's
                // (possibly refetched) copy.
                let mut bad = 0usize;
                for i in 0..n {
                    let want = ((rounds - 1) * n + i) as f64;
                    if tc.get(&v, i) != want {
                        bad += 1;
                    }
                }
                tc.reduce_f64_sum(bad as f64)
            })
        });
        assert_eq!(ok, 0.0, "trial {trial}: lost sibling stores");
    }
}

/// Race 2: the write notices piggybacked on a lock grant can name a page
/// the acquirer itself holds dirty (page-granularity false sharing). The
/// old code dropped the acquirer's modifications; the fix ships the local
/// diff to the home before invalidating.
#[test]
fn false_sharing_dirty_page_survives_acquire_invalidation() {
    let c = cluster(2, 1, ProtocolMode::SdsmOnly);
    let rounds = 20usize;
    let (a, b) = c.run(move |g| {
        // One page; node 0 owns word 0, node 1 owns word 256.
        let v = g.alloc_f64(512);
        g.parallel(move |tc| {
            let my_slot = if tc.node() == 0 { 0 } else { 256 };
            for round in 0..rounds {
                // Dirty my word...
                tc.set(&v, my_slot, (round + 1) as f64);
                // ...then acquire the lock the other node keeps releasing
                // with notices naming this very page.
                tc.critical(5, |tc| {
                    let c0 = tc.get(&v, 511);
                    tc.set(&v, 511, c0 + 1.0);
                });
            }
            tc.barrier();
            (tc.get(&v, 0), tc.get(&v, 256))
        })
    });
    assert_eq!(
        a, rounds as f64,
        "node 0's false-shared writes were dropped"
    );
    assert_eq!(
        b, rounds as f64,
        "node 1's false-shared writes were dropped"
    );
}

/// The counter inside the critical section itself must see every
/// increment across nodes (basic LRC lock-chain correctness under the
/// same false-sharing pressure).
#[test]
fn critical_counter_exact_under_false_sharing() {
    for mode in [ProtocolMode::SdsmOnly, ProtocolMode::Parade] {
        let c = cluster(3, 2, mode);
        let rounds = 15usize;
        let total = c.run(move |g| {
            let v = g.alloc_f64(512);
            g.parallel(move |tc| {
                // Each thread also dirties a thread-specific word of the
                // same page outside the critical section.
                let slot = 8 * tc.thread_num();
                for r in 0..rounds {
                    tc.set(&v, slot, r as f64);
                    tc.critical(9, |tc| {
                        let c0 = tc.get(&v, 500);
                        tc.set(&v, 500, c0 + 1.0);
                    });
                }
                tc.barrier();
            });
            g.get(&v, 500)
        });
        assert_eq!(
            total,
            (3 * 2 * rounds) as f64,
            "mode {mode:?}: critical increments lost"
        );
    }
}
