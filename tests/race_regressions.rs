//! Regression tests for two multi-threaded-SDSM protocol races found (and
//! fixed) during bring-up — the store-side cousins of the paper's §5.1
//! atomic page update problem. Both produced silent data corruption in
//! NAS CG under the baseline (SdsmOnly) mode before the fixes.

use parade::core::Cluster;
use parade::net::TimeSource;
use parade::prelude::*;

fn cluster(nodes: usize, tpn: usize, mode: ProtocolMode) -> Cluster {
    Cluster::builder()
        .nodes(nodes)
        .threads_per_node(tpn)
        .protocol(mode)
        .net(NetProfile::zero())
        .time(TimeSource::Manual)
        .pool_bytes(8 << 20)
        .build()
        .unwrap()
}

/// Race 1: a lock release flushes the node's dirty pages (snapshotting
/// them for diffs) while a *sibling thread* keeps storing through the
/// write fast path. A store landing between the snapshot and the
/// READ_ONLY downgrade used to vanish: it was neither in the shipped diff
/// nor in the twin taken at the next write fault.
#[test]
fn sibling_stores_survive_concurrent_lock_release_flush() {
    for trial in 0..5 {
        let c = cluster(2, 2, ProtocolMode::SdsmOnly);
        let n = 2048usize; // 4 pages of f64
        let rounds = 30usize;
        let ok = c.run(move |g| {
            let v = g.alloc_f64(n);
            let total = g.alloc_scalar_f64();
            g.parallel(move |tc| {
                // Thread 0 of node 0 churns lock acquire/release (each
                // release flushes every dirty page of the node) while its
                // sibling thread writes vector elements back-to-back.
                if tc.local_thread() == 0 {
                    for _ in 0..rounds {
                        tc.atomic_add_f64(&total, 1.0);
                    }
                } else {
                    // Writers: every element of the node's half, many
                    // passes, final pass writes the checkable value.
                    let mine = parade::core::partition(0..n, tc.num_nodes(), tc.node());
                    for pass in 0..rounds {
                        for i in mine.clone() {
                            tc.set(&v, i, (pass * n + i) as f64);
                        }
                    }
                    // Siblings of the atomic loop must still participate
                    // in the collectives it issued.
                    for _ in 0..rounds {
                        tc.atomic_add_f64(&total, 1.0);
                    }
                }
                if tc.local_thread() == 0 {
                    // Match the writers' atomic participation.
                }
                tc.barrier();
                // Every thread verifies the final pass from its own node's
                // (possibly refetched) copy.
                let mut bad = 0usize;
                for i in 0..n {
                    let want = ((rounds - 1) * n + i) as f64;
                    if tc.get(&v, i) != want {
                        bad += 1;
                    }
                }
                tc.reduce_f64_sum(bad as f64)
            })
        });
        assert_eq!(ok, 0.0, "trial {trial}: lost sibling stores");
    }
}

/// Race 2: the write notices piggybacked on a lock grant can name a page
/// the acquirer itself holds dirty (page-granularity false sharing). The
/// old code dropped the acquirer's modifications; the fix ships the local
/// diff to the home before invalidating.
#[test]
fn false_sharing_dirty_page_survives_acquire_invalidation() {
    let c = cluster(2, 1, ProtocolMode::SdsmOnly);
    let rounds = 20usize;
    let (a, b) = c.run(move |g| {
        // One page; node 0 owns word 0, node 1 owns word 256.
        let v = g.alloc_f64(512);
        g.parallel(move |tc| {
            let my_slot = if tc.node() == 0 { 0 } else { 256 };
            for round in 0..rounds {
                // Dirty my word...
                tc.set(&v, my_slot, (round + 1) as f64);
                // ...then acquire the lock the other node keeps releasing
                // with notices naming this very page.
                tc.critical(5, |tc| {
                    let c0 = tc.get(&v, 511);
                    tc.set(&v, 511, c0 + 1.0);
                });
            }
            tc.barrier();
            (tc.get(&v, 0), tc.get(&v, 256))
        })
    });
    assert_eq!(
        a, rounds as f64,
        "node 0's false-shared writes were dropped"
    );
    assert_eq!(
        b, rounds as f64,
        "node 1's false-shared writes were dropped"
    );
}

/// The counter inside the critical section itself must see every
/// increment across nodes (basic LRC lock-chain correctness under the
/// same false-sharing pressure).
#[test]
fn critical_counter_exact_under_false_sharing() {
    for mode in [ProtocolMode::SdsmOnly, ProtocolMode::Parade] {
        let c = cluster(3, 2, mode);
        let rounds = 15usize;
        let total = c.run(move |g| {
            let v = g.alloc_f64(512);
            g.parallel(move |tc| {
                // Each thread also dirties a thread-specific word of the
                // same page outside the critical section.
                let slot = 8 * tc.thread_num();
                for r in 0..rounds {
                    tc.set(&v, slot, r as f64);
                    tc.critical(9, |tc| {
                        let c0 = tc.get(&v, 500);
                        tc.set(&v, 500, c0 + 1.0);
                    });
                }
                tc.barrier();
            });
            g.get(&v, 500)
        });
        assert_eq!(
            total,
            (3 * 2 * rounds) as f64,
            "mode {mode:?}: critical increments lost"
        );
    }
}

/// Race 4 (sharded page store): splitting the per-node bookkeeping and
/// home-side page state across lock shards must be invisible — the same
/// workload over 16 shards and over the single-lock configuration has to
/// produce identical final bytes *and* identical protocol counters, even
/// with sibling threads hammering distinct shards concurrently.
#[test]
fn sharded_page_store_matches_single_lock() {
    const PAGES: usize = 16;
    const SLOTS: usize = PAGES * 512;
    let run = |shards: usize| {
        let c = Cluster::builder()
            .nodes(3)
            .threads_per_node(2)
            .net(NetProfile::zero())
            .time(TimeSource::Manual)
            .pool_bytes(8 << 20)
            .page_shards(shards)
            .build()
            .unwrap();
        c.run_with_report(move |g| {
            let v = g.alloc_f64(SLOTS);
            g.parallel(move |tc| {
                let (t, nt) = (tc.thread_num(), tc.num_threads());
                let mut sums = Vec::new();
                for round in 0..6 {
                    // Every thread writes its own words of every page, so
                    // each release merges batches into many shards at once.
                    for p in 0..PAGES {
                        for k in 0..4 {
                            let s = p * 512 + t + k * nt;
                            tc.set(&v, s, (round * 10_000 + s) as f64);
                        }
                    }
                    tc.barrier();
                    let mut acc = 0.0;
                    for i in 0..SLOTS {
                        acc += tc.get(&v, i);
                    }
                    sums.push(tc.reduce_f64_sum(acc).to_bits());
                }
                let mut bits: Vec<u64> = (0..SLOTS).map(|i| tc.get(&v, i).to_bits()).collect();
                bits.extend(sums);
                bits
            })
        })
    };
    let (bits_sharded, rep_sharded) = run(16);
    let (bits_single, rep_single) = run(1);
    assert_eq!(bits_sharded, bits_single, "final bytes diverged");
    let (a, b) = (
        rep_sharded.cluster.dsm_totals(),
        rep_single.cluster.dsm_totals(),
    );
    assert_eq!(
        (
            a.diffs_sent,
            a.batched_pages,
            a.shard_merges,
            a.invalidations
        ),
        (
            b.diffs_sent,
            b.batched_pages,
            b.shard_merges,
            b.invalidations
        ),
        "merge bookkeeping must not depend on the shard count"
    );
    assert!(a.shard_merges > 0, "the workload must actually merge diffs");
}

/// Race 5 (sharded store, cont.): a demand fetch racing a `DiffBatch`
/// merge of the very same page. Node 1 ships batches to home 0 at every
/// lock release while node 0's threads read the words being merged and
/// node 2 refetches the page after each lock-grant invalidation. Whatever
/// interleaving the host schedules, whole words and the final merged
/// state must survive — under both shard configurations.
#[test]
fn fault_racing_same_page_batch_merge_keeps_words_whole() {
    let rounds = 25usize;
    for trial in 0..3 {
        for shards in [1usize, 16] {
            let c = Cluster::builder()
                .nodes(3)
                .threads_per_node(2)
                .net(NetProfile::zero())
                .time(TimeSource::Manual)
                .pool_bytes(8 << 20)
                .page_shards(shards)
                .build()
                .unwrap();
            let bad = c.run(move |g| {
                let v = g.alloc_f64(1024); // two pages, homed on node 0
                g.parallel(move |tc| {
                    if tc.node() == 1 && tc.local_thread() == 0 {
                        // Writer: dirty both pages, then release (shipping
                        // one batch to home 0) — over and over.
                        for round in 0..rounds {
                            for i in 0..64 {
                                tc.set(&v, i * 16 + 1, (round * 64 + i) as f64);
                            }
                            tc.critical(3, |_| {});
                        }
                    } else {
                        // Home threads read the words mid-merge; node 2
                        // refaults after each lock-grant invalidation.
                        for _ in 0..rounds {
                            let mut acc = 0.0;
                            for i in 0..64 {
                                acc += tc.get(&v, i * 16 + 1);
                            }
                            std::hint::black_box(acc);
                            tc.critical(3, |_| {});
                        }
                    }
                    tc.barrier();
                    let mut bad = 0usize;
                    for i in 0..64 {
                        if tc.get(&v, i * 16 + 1) != ((rounds - 1) * 64 + i) as f64 {
                            bad += 1;
                        }
                    }
                    tc.reduce_f64_sum(bad as f64)
                })
            });
            assert_eq!(
                bad, 0.0,
                "trial {trial}, {shards} shard(s): torn or lost merge"
            );
        }
    }
}

/// Race 3: the hierarchical barrier's root aggregates one local arrival
/// plus one `BarrierUp` per tree child, in whatever real-time order its
/// communication thread happens to service them. Everything the departure
/// decides — migration entries, the departure's virtual timestamp, and
/// the master-last release order (PR 4's rule, preserved by the tree
/// path) — must be independent of that order. An early version charged
/// service time in handling order, which leaked host scheduling into
/// virtual time.
#[test]
fn tree_barrier_departure_is_independent_of_aggregation_order() {
    use std::sync::Arc;
    use std::time::Duration;

    use parade::dsm::{spawn_comm_thread, Dsm, DsmConfig, DsmMsg, PAGE_SIZE};
    use parade::net::{Fabric, Match, MsgClass, VClock, VTime};

    // In a 4-node binomial tree, root 0's children are nodes 1 (subtree
    // {1}) and 2 (subtree {2, 3}). Page 5 is multi-written by {1, 3} with
    // old home 0, so the migratory rule picks the smallest writer; page 9
    // has the single writer 2.
    let up_from_1 = DsmMsg::BarrierUp {
        seq: 0,
        members: vec![(1, 70)],
        writers: vec![(5, vec![1])],
        readers: vec![],
    };
    let up_from_2 = DsmMsg::BarrierUp {
        seq: 0,
        members: vec![(2, 71), (3, 72)],
        writers: vec![(9, vec![2]), (5, vec![3])],
        readers: vec![],
    };

    let run = |ups_before_arrive: bool| {
        let fabric = Fabric::new(4, NetProfile::clan_via());
        let cfg = DsmConfig {
            pool_bytes: 64 * PAGE_SIZE,
            ..DsmConfig::default()
        };
        assert!(cfg.hierarchical_barrier, "hierarchy must be the default");
        let dsm = Arc::new(Dsm::new(fabric.endpoint(0), cfg));
        let comm = spawn_comm_thread(Arc::clone(&dsm));
        let up_at = VTime::from_micros(40);
        let (e1, e2) = (fabric.endpoint(1), fabric.endpoint(2));
        let (up_from_1, up_from_2) = (up_from_1.clone(), up_from_2.clone());
        let send_ups = move || {
            // The virtual send instants are pinned; only the *real-time*
            // order in which the root services the burst varies.
            e2.send_at(0, MsgClass::Dsm, 0, up_from_2.encode(), up_at);
            std::thread::sleep(Duration::from_millis(15));
            e1.send_at(0, MsgClass::Dsm, 0, up_from_1.encode(), up_at);
        };
        let feeder = if ups_before_arrive {
            send_ups();
            std::thread::sleep(Duration::from_millis(15));
            None
        } else {
            Some(std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                send_ups();
            }))
        };
        let mut clk = VClock::manual();
        dsm.barrier(&mut clk);
        if let Some(h) = feeder {
            h.join().unwrap();
        }
        // Master-last: by the time the root's own caller is past the
        // barrier, every remote member's departure must already be queued.
        let remotes: Vec<_> = [(1usize, 70u64), (2, 71), (3, 72)]
            .into_iter()
            .map(|(node, tag)| {
                let ep = fabric.endpoint(node);
                assert_eq!(
                    ep.queued(MsgClass::Ctl),
                    1,
                    "node {node}'s departure must be queued before the \
                     master's caller resumes"
                );
                let pkt = ep.recv_raw(MsgClass::Ctl, Match::tagged(tag)).unwrap();
                (pkt.arrive_at, pkt.payload.to_vec())
            })
            .collect();
        let outcome = (clk.now(), remotes, dsm.home_of(5), dsm.home_of(9));
        fabric.begin_shutdown();
        comm.join().unwrap();
        outcome
    };

    let (t_a, departs_a, h5, h9) = run(true);
    assert_eq!(h5, 1, "multi-writer page migrates to the smallest writer");
    assert_eq!(h9, 2, "single-writer page migrates to its writer");
    let (t_b, departs_b, ..) = run(false);
    assert_eq!(
        t_a, t_b,
        "the root's departure time must not depend on service order"
    );
    assert_eq!(
        departs_a, departs_b,
        "departure payloads and stamps must not depend on service order"
    );
}
