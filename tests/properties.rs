//! Property-based tests of the core invariants (proptest).

use proptest::prelude::*;

use parade::core::partition;
use parade::dsm::{Diff, PageState, PAGE_SIZE};
use parade::kernels::nasrng::{pow46, NasRng, NAS_A};
use parade::mpi::datatype::{bytes_to_f64s, f64s_to_bytes, Reader, Writer};
use parade::net::{NetProfile, VTime};

// ---- diffs -----------------------------------------------------------------

/// Generate a page as sparse modifications over a base.
fn page_strategy() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (
        proptest::collection::vec(any::<u8>(), 64),
        proptest::collection::vec((0usize..PAGE_SIZE, any::<u8>()), 0..64),
    )
        .prop_map(|(seed, writes)| {
            let mut base = vec![0u8; PAGE_SIZE];
            for (i, b) in seed.iter().enumerate() {
                base[i * (PAGE_SIZE / 64)] = *b;
            }
            let mut cur = base.clone();
            for (pos, v) in writes {
                cur[pos] = v;
            }
            (base, cur)
        })
}

proptest! {
    #[test]
    fn diff_apply_reconstructs_modified_page((twin, cur) in page_strategy()) {
        let d = Diff::create(&twin, &cur);
        let mut rebuilt = twin.clone();
        d.apply(&mut rebuilt);
        prop_assert_eq!(rebuilt, cur);
    }

    #[test]
    fn diff_encode_decode_roundtrip((twin, cur) in page_strategy()) {
        let d = Diff::create(&twin, &cur);
        let mut w = Writer::new();
        d.encode(&mut w);
        let bytes = w.finish();
        prop_assert_eq!(bytes.len(), d.encoded_len());
        let d2 = Diff::decode(&mut Reader::new(&bytes));
        prop_assert_eq!(d, d2);
    }

    #[test]
    fn disjoint_diffs_commute((base, a) in page_strategy()) {
        // Writer B touches only the second half; writer A's changes are
        // masked out of the second half so the word sets are disjoint.
        let mut a2 = base.clone();
        a2[..PAGE_SIZE / 2].copy_from_slice(&a[..PAGE_SIZE / 2]);
        let mut b = base.clone();
        b[PAGE_SIZE / 2 + 8] ^= 0x5a;
        let da = Diff::create(&base, &a2);
        let db = Diff::create(&base, &b);
        let mut one = base.clone();
        da.apply(&mut one);
        db.apply(&mut one);
        let mut two = base.clone();
        db.apply(&mut two);
        da.apply(&mut two);
        prop_assert_eq!(one, two);
    }
}

// ---- loop partitioning -------------------------------------------------------

proptest! {
    #[test]
    fn partition_is_exact_and_disjoint(start in 0usize..1000, len in 0usize..10_000, n in 1usize..64) {
        let mut covered = Vec::new();
        let mut sizes = Vec::new();
        for i in 0..n {
            let r = partition(start..start + len, n, i);
            sizes.push(r.len());
            covered.extend(r);
        }
        // Exact coverage in order, no overlap.
        prop_assert_eq!(covered, (start..start + len).collect::<Vec<_>>());
        // Balance: sizes differ by at most one.
        let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(mx - mn <= 1);
    }
}

// ---- NAS RNG -------------------------------------------------------------------

proptest! {
    #[test]
    fn rng_jump_equals_iteration(seed in 1u64..(1 << 40), n in 0u64..3000) {
        let mut seq = NasRng::new(seed, NAS_A);
        for _ in 0..n {
            seq.next_f64();
        }
        let jumped = NasRng::new(seed, NAS_A).at_offset(n);
        prop_assert_eq!(seq.seed(), jumped.seed());
    }

    #[test]
    fn pow46_is_homomorphic(a in 1u64..(1 << 30), m in 0u64..500, n in 0u64..500) {
        // a^(m+n) == a^m * a^n (mod 2^46)
        let lhs = pow46(a, m + n);
        let rhs = ((pow46(a, m) as u128 * pow46(a, n) as u128) & ((1u128 << 46) - 1)) as u64;
        prop_assert_eq!(lhs, rhs);
    }
}

// ---- wire formats ------------------------------------------------------------

proptest! {
    #[test]
    fn f64_payload_roundtrip(xs in proptest::collection::vec(any::<f64>(), 0..200)) {
        let b = f64s_to_bytes(&xs);
        let back = bytes_to_f64s(&b);
        prop_assert_eq!(xs.len(), back.len());
        for (a, b) in xs.iter().zip(back) {
            prop_assert!(a.to_bits() == b.to_bits());
        }
    }
}

// ---- page state machine ---------------------------------------------------------

proptest! {
    #[test]
    fn page_state_machine_has_no_illegal_shortcuts(seq in proptest::collection::vec(0u8..5, 1..50)) {
        // Walk arbitrary requested states; only legal transitions may be
        // taken, and from any state the protocol can always reach Invalid
        // again (liveness of invalidation).
        let mut st = PageState::Invalid;
        for want in seq {
            let want = PageState::from_u8(want);
            if st.can_transition(want) {
                st = want;
            }
        }
        // Drive back to Invalid via legal edges.
        let mut steps = 0;
        while st != PageState::Invalid {
            st = match st {
                PageState::Transient | PageState::Blocked => PageState::ReadOnly,
                PageState::Dirty => PageState::ReadOnly,
                PageState::ReadOnly => PageState::Invalid,
                PageState::Invalid => break,
            };
            steps += 1;
            prop_assert!(steps < 5);
        }
        prop_assert_eq!(st, PageState::Invalid);
    }
}

// ---- network cost model ------------------------------------------------------------

proptest! {
    #[test]
    fn transfer_cost_is_monotonic_in_size(a in 0usize..100_000, b in 0usize..100_000) {
        let p = NetProfile::clan_via();
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(p.transfer(0, 1, small) <= p.transfer(0, 1, large));
    }

    #[test]
    fn vtime_max_is_commutative_and_associative(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4, c in 0u64..u64::MAX / 4) {
        let (a, b, c) = (VTime::from_nanos(a), VTime::from_nanos(b), VTime::from_nanos(c));
        prop_assert_eq!(a.max(b), b.max(a));
        prop_assert_eq!(a.max(b).max(c), a.max(b.max(c)));
    }
}

// ---- translator --------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn interpreter_sums_match_rust(n in 1usize..200, scale in 1i64..50) {
        // A generated OpenMP program whose result we can predict exactly.
        let src = format!(
            "int main() {{\n\
                int i;\n\
                double sum = 0.0;\n\
                #pragma omp parallel for reduction(+: sum)\n\
                for (i = 0; i < {n}; i++) sum += i * {scale};\n\
                printf(\"%.0f\\n\", sum);\n\
                return 0;\n\
            }}"
        );
        let prog = parade::translator::parse(&src).unwrap();
        let cluster = parade::core::Cluster::builder()
            .nodes(2)
            .threads_per_node(2)
            .net(NetProfile::zero())
            .time(parade::net::TimeSource::Manual)
            .pool_bytes(256 * PAGE_SIZE)
            .build()
            .unwrap();
        let out = parade::translator::Interp::new(prog).run(&cluster).unwrap();
        let expect: i64 = (0..n as i64).map(|i| i * scale).sum();
        prop_assert_eq!(out.stdout.trim(), format!("{expect}"));
    }
}

// ---- parser robustness --------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn parser_never_panics_on_arbitrary_input(src in "[ -~\\n]{0,400}") {
        // Any byte soup must produce Ok or a located Err — never a panic.
        let _ = parade::translator::parse(&src);
    }

    #[test]
    fn lexer_handles_arbitrary_pragmas(body in "[a-z,():+ ]{0,80}") {
        let src = format!("#pragma omp {body}\nint main() {{ return 0; }}");
        let _ = parade::translator::parse(&src);
    }
}

// ---- runtime reduction laws over cluster shapes -------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn hierarchical_reduce_equals_flat_fold(
        nodes in 1usize..5,
        tpn in 1usize..4,
        vals in proptest::collection::vec(-1000i64..1000, 1..20),
    ) {
        let cluster = parade::core::Cluster::builder()
            .nodes(nodes)
            .threads_per_node(tpn)
            .net(NetProfile::zero())
            .time(parade::net::TimeSource::Manual)
            .pool_bytes(256 * PAGE_SIZE)
            .build()
            .unwrap();
        let vals2 = vals.clone();
        let total_threads = nodes * tpn;
        let got = cluster.run(move |g| {
            g.parallel(move |tc| {
                let mut sums = Vec::new();
                for &v in &vals2 {
                    // Every thread contributes v * (tid + 1).
                    let mine = v * (tc.thread_num() as i64 + 1);
                    sums.push(tc.reduce_i64(parade::core::ReduceOp::Sum, mine));
                }
                sums
            })
        });
        let weight: i64 = (1..=total_threads as i64).sum();
        for (v, s) in vals.iter().zip(got) {
            prop_assert_eq!(s, v * weight);
        }
    }
}
