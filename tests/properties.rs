//! Property-based tests of the core invariants, on the in-repo
//! `parade-testkit` harness (deterministic seeds, greedy shrinking).
//!
//! Every invariant from the original property suite is preserved. Inputs
//! are pinned: the default base seed generates the identical case sequence
//! on every run; a failure prints a `PARADE_PROP_SEED=0x…` line that
//! reproduces the exact case and minimal counterexample.
//!
//! Where a generator had a structural precondition (e.g. "at least one
//! node"), the property re-checks it and passes vacuously on inputs that
//! type-level shrinking pushed outside the precondition — shrunk
//! counterexamples therefore always satisfy the original constraints.

use parade_testkit::prelude::*;

use parade::core::partition;
use parade::dsm::{Diff, PageState, PAGE_SIZE};
use parade::kernels::nasrng::{pow46, NasRng, NAS_A};
use parade::mpi::datatype::{bytes_to_f64s, f64s_to_bytes, Reader, Writer};
use parade::net::{NetProfile, VTime};

// ---- diffs -----------------------------------------------------------------

/// A page pair described as sparse modifications over a seeded base: the
/// spec (not the 4 KiB pages) is what shrinks, so shrunk counterexamples
/// are still valid page pairs.
fn page_spec(r: &mut TestRng) -> (Vec<u8>, Vec<(usize, u8)>) {
    let seed = r.bytes_vec(64, 65);
    let n = r.range_usize(0, 64);
    let writes = (0..n)
        .map(|_| (r.range_usize(0, PAGE_SIZE), r.next_byte()))
        .collect();
    (seed, writes)
}

/// Materialize `(base, cur)` pages from a (possibly shrunk) spec.
fn build_pages(seed: &[u8], writes: &[(usize, u8)]) -> (Vec<u8>, Vec<u8>) {
    let mut base = vec![0u8; PAGE_SIZE];
    for (i, b) in seed.iter().take(64).enumerate() {
        base[i * (PAGE_SIZE / 64)] = *b;
    }
    let mut cur = base.clone();
    for &(pos, v) in writes {
        cur[pos % PAGE_SIZE] = v;
    }
    (base, cur)
}

prop!(fn diff_apply_reconstructs_modified_page((seed, writes) in page_spec) {
    let (twin, cur) = build_pages(&seed, &writes);
    let d = Diff::create(&twin, &cur);
    let mut rebuilt = twin.clone();
    d.apply(&mut rebuilt);
    assert_eq!(rebuilt, cur);
});

prop!(fn diff_encode_decode_roundtrip((seed, writes) in page_spec) {
    let (twin, cur) = build_pages(&seed, &writes);
    let d = Diff::create(&twin, &cur);
    let mut w = Writer::new();
    d.encode(&mut w);
    let bytes = w.finish();
    assert_eq!(bytes.len(), d.encoded_len());
    let d2 = Diff::decode(&mut Reader::new(&bytes)).expect("own encoding must decode");
    assert_eq!(d, d2);
});

prop!(fn diff_decode_survives_mutation((seed, writes, flips) in |r: &mut TestRng| {
    let (seed, writes) = page_spec(r);
    let n = r.range_usize(1, 8);
    let flips: Vec<(usize, u8)> = (0..n)
        .map(|_| (r.range_usize(0, 1 << 16), r.next_byte()))
        .collect();
    (seed, writes, flips)
}) {
    // Corrupting arbitrary bytes of a valid encoding must yield either a
    // structured error or a diff that is still in-bounds for `apply` —
    // never a panic, never an out-of-page write.
    let (twin, cur) = build_pages(&seed, &writes);
    let d = Diff::create(&twin, &cur);
    let mut w = Writer::new();
    d.encode(&mut w);
    let mut bytes = w.finish().to_vec();
    if bytes.is_empty() {
        return;
    }
    for &(pos, v) in &flips {
        let p = pos % bytes.len();
        bytes[p] ^= v;
    }
    if let Ok(d2) = Diff::decode(&mut Reader::new(&bytes)) {
        let mut page = vec![0u8; PAGE_SIZE];
        d2.apply(&mut page); // bounds guaranteed by decode validation
    }
});

prop!(fn diff_decode_survives_truncation((seed, writes, cut) in |r: &mut TestRng| {
    let (seed, writes) = page_spec(r);
    (seed, writes, r.range_usize(0, 1 << 16))
}) {
    let (twin, cur) = build_pages(&seed, &writes);
    let d = Diff::create(&twin, &cur);
    let mut w = Writer::new();
    d.encode(&mut w);
    let bytes = w.finish();
    let keep = cut % (bytes.len() + 1);
    if keep == bytes.len() {
        return; // not truncated
    }
    // Every strict prefix is missing data: decode must return Err (the
    // run-count header no longer matches the bytes behind it).
    assert!(Diff::decode(&mut Reader::new(&bytes[..keep])).is_err());
});

prop!(fn disjoint_diffs_commute((seed, writes) in page_spec) {
    // Writer B touches only the second half; writer A's changes are
    // masked out of the second half so the word sets are disjoint.
    let (base, a) = build_pages(&seed, &writes);
    let mut a2 = base.clone();
    a2[..PAGE_SIZE / 2].copy_from_slice(&a[..PAGE_SIZE / 2]);
    let mut b = base.clone();
    b[PAGE_SIZE / 2 + 8] ^= 0x5a;
    let da = Diff::create(&base, &a2);
    let db = Diff::create(&base, &b);
    let mut one = base.clone();
    da.apply(&mut one);
    db.apply(&mut one);
    let mut two = base.clone();
    db.apply(&mut two);
    da.apply(&mut two);
    assert_eq!(one, two);
});

prop!(fn odd_page_size_diffs_roundtrip((len, writes) in |r: &mut TestRng| {
    // Deliberately not a multiple of 8: the trailing partial word used to
    // be read past the slice end by the word-at-a-time comparison.
    let len = r.range_usize(1, 600);
    let n = r.range_usize(0, 40);
    let writes: Vec<(usize, u8)> = (0..n)
        .map(|_| (r.range_usize(0, len), r.next_byte()))
        .collect();
    (len, writes)
}) {
    if len == 0 {
        return; // shrunk out of the generator's 1.. precondition
    }
    let base: Vec<u8> = (0..len).map(|i| (i * 37) as u8).collect();
    let mut cur = base.clone();
    for &(pos, v) in &writes {
        cur[pos % len] = v;
    }
    let d = Diff::create(&base, &cur);
    let mut rebuilt = base.clone();
    d.apply(&mut rebuilt);
    assert_eq!(rebuilt, cur, "len {len} (len % 8 == {})", len % 8);
});

// ---- loop partitioning -------------------------------------------------------

prop!(fn partition_is_exact_and_disjoint((start, len, n) in |r: &mut TestRng| {
    (r.range_usize(0, 1000), r.range_usize(0, 10_000), r.range_usize(1, 64))
}) {
    if n == 0 {
        return; // shrunk out of the generator's 1..64 precondition
    }
    let mut covered = Vec::new();
    let mut sizes = Vec::new();
    for i in 0..n {
        let r = partition(start..start + len, n, i);
        sizes.push(r.len());
        covered.extend(r);
    }
    // Exact coverage in order, no overlap.
    assert_eq!(covered, (start..start + len).collect::<Vec<_>>());
    // Balance: sizes differ by at most one.
    let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
    assert!(mx - mn <= 1);
});

// ---- NAS RNG -------------------------------------------------------------------

prop!(fn rng_jump_equals_iteration((seed, n) in |r: &mut TestRng| {
    (r.range_u64(1, 1 << 40), r.range_u64(0, 3000))
}) {
    let mut seq = NasRng::new(seed, NAS_A);
    for _ in 0..n {
        seq.next_f64();
    }
    let jumped = NasRng::new(seed, NAS_A).at_offset(n);
    assert_eq!(seq.seed(), jumped.seed());
});

prop!(fn pow46_is_homomorphic((a, m, n) in |r: &mut TestRng| {
    (r.range_u64(1, 1 << 30), r.range_u64(0, 500), r.range_u64(0, 500))
}) {
    // a^(m+n) == a^m * a^n (mod 2^46)
    let lhs = pow46(a, m + n);
    let rhs = ((pow46(a, m) as u128 * pow46(a, n) as u128) & ((1u128 << 46) - 1)) as u64;
    assert_eq!(lhs, rhs);
});

prop!(fn testkit_rng_matches_kernels_nasrng((seed, n) in |r: &mut TestRng| {
    (r.range_u64(1, 1 << 46), r.range_u64(1, 200))
}) {
    // The harness's own generator IS the NAS LCG: the raw stream must be
    // bit-identical to parade-kernels' reference implementation.
    let mut tk = TestRng::nas_stream(seed);
    let mut nas = NasRng::nas(seed);
    for _ in 0..n {
        assert_eq!(tk.next_f64().to_bits(), nas.next_f64().to_bits());
    }
    assert_eq!(tk.state(), nas.seed());
});

// ---- wire formats ------------------------------------------------------------

prop!(fn f64_payload_roundtrip(xs in |r: &mut TestRng| -> Vec<f64> {
    let n = r.range_usize(0, 200);
    (0..n).map(|_| r.f64_bits()).collect()
}) {
    // Arbitrary bit patterns, including NaN/inf/-0: compare as bits.
    let b = f64s_to_bytes(&xs);
    let back = bytes_to_f64s(&b);
    assert_eq!(xs.len(), back.len());
    for (a, b) in xs.iter().zip(back) {
        assert!(a.to_bits() == b.to_bits());
    }
});

// ---- page state machine ---------------------------------------------------------

prop!(fn page_state_machine_has_no_illegal_shortcuts(seq in |r: &mut TestRng| {
    let n = r.range_usize(1, 50);
    (0..n).map(|_| r.next_byte() % 5).collect::<Vec<u8>>()
}) {
    // Walk arbitrary requested states; only legal transitions may be
    // taken, and from any state the protocol can always reach Invalid
    // again (liveness of invalidation).
    let mut st = PageState::Invalid;
    for want in seq {
        let want = PageState::from_u8(want % 5);
        if st.can_transition(want) {
            st = want;
        }
    }
    // Drive back to Invalid via legal edges.
    let mut steps = 0;
    while st != PageState::Invalid {
        st = match st {
            PageState::Transient | PageState::Blocked => PageState::ReadOnly,
            PageState::Dirty => PageState::ReadOnly,
            PageState::ReadOnly => PageState::Invalid,
            PageState::Invalid => break,
        };
        steps += 1;
        assert!(steps < 5);
    }
    assert_eq!(st, PageState::Invalid);
});

// ---- network cost model ------------------------------------------------------------

prop!(fn transfer_cost_is_monotonic_in_size((a, b) in |r: &mut TestRng| {
    (r.range_usize(0, 100_000), r.range_usize(0, 100_000))
}) {
    let p = NetProfile::clan_via();
    let (small, large) = if a <= b { (a, b) } else { (b, a) };
    assert!(p.transfer(0, 1, small) <= p.transfer(0, 1, large));
});

prop!(fn vtime_max_is_commutative_and_associative((a, b, c) in |r: &mut TestRng| {
    (r.range_u64(0, u64::MAX / 4), r.range_u64(0, u64::MAX / 4), r.range_u64(0, u64::MAX / 4))
}) {
    let (a, b, c) = (VTime::from_nanos(a), VTime::from_nanos(b), VTime::from_nanos(c));
    assert_eq!(a.max(b), b.max(a));
    assert_eq!(a.max(b).max(c), a.max(b.max(c)));
});

// ---- translator --------------------------------------------------------------------

prop!(cases = 64, fn interpreter_sums_match_rust((n, scale) in |r: &mut TestRng| {
    (r.range_usize(1, 200), r.range_i64(1, 50))
}) {
    // A generated OpenMP program whose result we can predict exactly.
    let src = format!(
        "int main() {{\n\
            int i;\n\
            double sum = 0.0;\n\
            #pragma omp parallel for reduction(+: sum)\n\
            for (i = 0; i < {n}; i++) sum += i * {scale};\n\
            printf(\"%.0f\\n\", sum);\n\
            return 0;\n\
        }}"
    );
    let prog = parade::translator::parse(&src).unwrap();
    let cluster = parade::core::Cluster::builder()
        .nodes(2)
        .threads_per_node(2)
        .net(NetProfile::zero())
        .time(parade::net::TimeSource::Manual)
        .pool_bytes(256 * PAGE_SIZE)
        .build()
        .unwrap();
    let out = parade::translator::Interp::new(prog).run(&cluster).unwrap();
    let expect: i64 = (0..n as i64).map(|i| i * scale).sum();
    assert_eq!(out.stdout.trim(), format!("{expect}"));
});

// ---- parser robustness --------------------------------------------------------

/// Printable ASCII plus newline (the original `"[ -~\n]"` regex class).
fn printable_charset() -> Vec<char> {
    let mut cs: Vec<char> = (' '..='~').collect();
    cs.push('\n');
    cs
}

prop!(cases = 256, fn parser_never_panics_on_arbitrary_input(src in |r: &mut TestRng| {
    let cs = printable_charset();
    r.string_from(&cs, 0, 400)
}) {
    // Any byte soup must produce Ok or a located Err — never a panic.
    let _ = parade::translator::parse(&src);
});

prop!(fn lexer_handles_arbitrary_pragmas(body in |r: &mut TestRng| {
    let cs: Vec<char> = "abcdefghijklmnopqrstuvwxyz,():+ ".chars().collect();
    r.string_from(&cs, 0, 80)
}) {
    let src = format!("#pragma omp {body}\nint main() {{ return 0; }}");
    let _ = parade::translator::parse(&src);
});

// ---- hierarchical collectives vs flat vs sequential reference -----------------

/// Run `rounds` of barrier → allreduce(Sum, i64+f64) → allreduce(Max) →
/// bcast on `size` MPI ranks, either flat (`groups = None`) or over an
/// explicit SMP placement. Every observed value is returned as raw bits,
/// so equality below means *bit-identical*. All f64 operands are exact
/// small integers: every fold order yields the same bits, which is what
/// lets a two-level combine be compared against a flat one at all.
fn run_mpi_collectives_shaped(
    size: usize,
    groups: Option<Vec<Vec<usize>>>,
    rounds: usize,
) -> Vec<Vec<u64>> {
    use std::sync::Arc;

    use parade::mpi::{CollectiveTopology, Communicator, ReduceOp};
    use parade::net::{Fabric, VClock};

    let fabric = Fabric::new(size, NetProfile::clan_via());
    let topo = groups.map(|g| Arc::new(CollectiveTopology::from_groups(size, g)));
    let handles: Vec<_> = (0..size)
        .map(|rank| {
            let comm = match &topo {
                Some(t) => Communicator::with_topology(fabric.endpoint(rank), Arc::clone(t)),
                None => Communicator::new(fabric.endpoint(rank)),
            };
            std::thread::spawn(move || {
                let mut clk = VClock::manual();
                let mut seen = Vec::new();
                for round in 0..rounds {
                    comm.barrier(&mut clk);
                    let s = comm.allreduce_f64((rank * 3 + round) as f64, ReduceOp::Sum, &mut clk);
                    seen.push(s.to_bits());
                    let si =
                        comm.allreduce_i64(rank as i64 - 2 * round as i64, ReduceOp::Sum, &mut clk);
                    seen.push(si as u64);
                    let m = comm.allreduce_f64(
                        ((rank + 7) % (round + 3)) as f64,
                        ReduceOp::Max,
                        &mut clk,
                    );
                    seen.push(m.to_bits());
                    let root = round % size;
                    let mut xs: Vec<f64> = if rank == root {
                        (0..size).map(|i| (round * 7 + i * 2) as f64).collect()
                    } else {
                        vec![0.0; size]
                    };
                    comm.bcast_f64s(root, &mut xs, &mut clk);
                    seen.extend(xs.iter().map(|x| x.to_bits()));
                }
                seen
            })
        })
        .collect();
    let out = handles.into_iter().map(|h| h.join().unwrap()).collect();
    fabric.begin_shutdown();
    out
}

/// The sequential reference for [`run_mpi_collectives_shaped`]: what one
/// rank's log must contain, computed with plain loops and no fabric.
fn sequential_collectives_reference(size: usize, rounds: usize) -> Vec<u64> {
    let mut seen = Vec::new();
    for round in 0..rounds {
        let sum: f64 = (0..size).map(|r| (r * 3 + round) as f64).sum();
        seen.push(sum.to_bits());
        let sum_i: i64 = (0..size).map(|r| r as i64 - 2 * round as i64).sum();
        seen.push(sum_i as u64);
        let max = (0..size)
            .map(|r| ((r + 7) % (round + 3)) as f64)
            .fold(f64::NEG_INFINITY, f64::max);
        seen.push(max.to_bits());
        seen.extend((0..size).map(|i| ((round * 7 + i * 2) as f64).to_bits()));
    }
    seen
}

/// A random partition of `0..size` into non-empty groups — deliberately
/// *not* restricted to consecutive blocks, so leader election is exercised
/// on arbitrary placements (leader = lowest rank of each group, which may
/// sit anywhere in `0..size`).
fn random_groups(r: &mut TestRng, size: usize) -> Vec<Vec<usize>> {
    let mut ranks: Vec<usize> = (0..size).collect();
    for i in (1..ranks.len()).rev() {
        ranks.swap(i, r.below(i as u64 + 1) as usize);
    }
    let mut groups = Vec::new();
    let mut rest = &ranks[..];
    while !rest.is_empty() {
        let take = r.range_usize(1, 4.min(rest.len() + 1)).max(1);
        groups.push(rest[..take].to_vec());
        rest = &rest[take..];
    }
    groups
}

prop!(cases = 10, fn hierarchical_collectives_match_flat_and_reference(
    (size, groups, rounds) in |r: &mut TestRng| {
        let size = r.range_usize(2, 10);
        let groups = random_groups(r, size);
        (size, groups, r.range_usize(2, 5).max(1))
    }) {
    if size < 2 || groups.iter().map(Vec::len).sum::<usize>() != size {
        return; // shrunk out of the generator's precondition
    }
    let hier = run_mpi_collectives_shaped(size, Some(groups.clone()), rounds);
    let flat = run_mpi_collectives_shaped(size, None, rounds);
    let reference = sequential_collectives_reference(size, rounds);
    for (rank, log) in hier.iter().enumerate() {
        assert_eq!(
            log, &reference,
            "rank {rank} over groups {groups:?} diverged from the sequential reference"
        );
    }
    assert_eq!(hier, flat, "two-level must be bit-identical to flat ({groups:?})");
});

prop!(cases = 6, fn cluster_collectives_match_with_hierarchy_on_and_off(
    (nodes, tpn, width) in |r: &mut TestRng| {
        (r.range_usize(2, 6), r.range_usize(1, 3), r.range_usize(1, 5))
    }) {
    if nodes < 2 || tpn == 0 || width == 0 {
        return; // shrunk out of the generator's precondition
    }
    // The whole runtime stack — DSM tree barrier underneath, MPI two-level
    // collectives above — must produce the same bits as the flat baseline
    // on arbitrary (nodes, threads, smp_width) shapes.
    let run = |hierarchical: bool| {
        let cluster = parade::core::Cluster::builder()
            .nodes(nodes)
            .threads_per_node(tpn)
            .net(NetProfile::zero())
            .time(parade::net::TimeSource::Manual)
            .pool_bytes(256 * PAGE_SIZE)
            .hierarchical_collectives(hierarchical)
            .smp_width(width)
            .build()
            .unwrap();
        cluster.run(move |g| {
            let v = g.alloc_f64(64);
            g.parallel(move |tc| {
                let mine = parade::core::partition(0..64, tc.num_threads(), tc.thread_num());
                for i in mine {
                    tc.set(&v, i, (i * 3 + 1) as f64);
                }
                tc.barrier();
                let mut acc = 0.0;
                for i in 0..64 {
                    acc += tc.get(&v, i);
                }
                tc.reduce_f64_sum(acc)
            })
        })
    };
    let hier = run(true);
    let flat = run(false);
    assert_eq!(hier.to_bits(), flat.to_bits(), "shape ({nodes}x{tpn}, width {width})");
});

// ---- adaptive protocol equivalence --------------------------------------------
//
// The per-page invalidate-vs-update selection (and the stride prefetcher
// riding below it) may only change *when* bytes move, never *which* bytes:
// a push installs the same merged page an invalidate+refetch would. These
// properties pin that claim over random page traces and the real kernels.

use parade::dsm::ProtoSelect;

/// splitmix64: the trace's only source of randomness, so every protocol
/// mode replays the identical write/read schedule.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn proto_cluster(
    nodes: usize,
    tpn: usize,
    proto: ProtoSelect,
    prefetch: bool,
) -> parade::core::Cluster {
    parade::core::Cluster::builder()
        .nodes(nodes)
        .threads_per_node(tpn)
        .net(NetProfile::zero())
        .time(parade::net::TimeSource::Manual)
        .pool_bytes(256 * PAGE_SIZE)
        .proto_select(proto)
        .stride_prefetch(prefetch)
        .build()
        .unwrap()
}

/// A random page trace: each interval picks, per page, either one writer
/// node (sometimes broadcast-read afterwards — the update protocol's
/// favourite shape) or false-sharing writers on disjoint words, then
/// barriers. Returns the final vector as raw bits read on the master.
fn run_page_trace(
    nodes: usize,
    tpn: usize,
    pages: usize,
    intervals: usize,
    seed: u64,
    proto: ProtoSelect,
    prefetch: bool,
) -> Vec<u64> {
    const SLOTS_PER_PAGE: usize = PAGE_SIZE / 8;
    let c = proto_cluster(nodes, tpn, proto, prefetch);
    let slots = pages * SLOTS_PER_PAGE;
    c.run(move |g| {
        let v = g.alloc_f64(slots);
        g.parallel(move |tc| {
            for interval in 0..intervals {
                for p in 0..pages {
                    let h = mix(seed ^ ((p as u64) << 17) ^ ((interval as u64) << 33));
                    let w = (h % (nodes as u64 + 2)) as usize;
                    if w < nodes {
                        // Single writer: node w dirties a few words.
                        if tc.node() == w && tc.local_thread() == 0 {
                            for k in 0..4 {
                                let s =
                                    p * SLOTS_PER_PAGE + ((h >> (8 * k)) as usize % SLOTS_PER_PAGE);
                                tc.set(&v, s, (h ^ s as u64) as f64);
                            }
                        }
                    } else if tc.local_thread() == 0 {
                        // Page-granularity false sharing: every node writes
                        // its own words of the same page.
                        for k in 0..4 {
                            let s = p * SLOTS_PER_PAGE + tc.node() + k * nodes;
                            tc.set(&v, s, (h ^ s as u64 ^ tc.node() as u64) as f64);
                        }
                    }
                }
                tc.barrier();
                // Broadcast-read on even-hash intervals (every node becomes
                // a sharer, steering Adaptive toward update pushes); a
                // rotating half of the nodes otherwise.
                let hr = mix(seed ^ 0x5eed ^ ((interval as u64) << 7));
                if hr.is_multiple_of(2) || tc.node() % 2 == interval % 2 {
                    let mut acc = 0.0;
                    for i in 0..slots {
                        acc += tc.get(&v, i);
                    }
                    std::hint::black_box(acc);
                }
                tc.barrier();
            }
            let mut bits = Vec::with_capacity(slots);
            for i in 0..slots {
                bits.push(tc.get(&v, i).to_bits());
            }
            bits
        })
    })
}

prop!(cases = 6, fn protocol_modes_are_bit_identical_on_random_page_traces(
    ((nodes, tpn), pages, intervals, seed) in |r: &mut TestRng| {
        ((r.range_usize(2, 5), r.range_usize(1, 3)), r.range_usize(2, 6),
         r.range_usize(3, 7), r.next_u64())
    }) {
    if nodes < 2 || tpn == 0 || pages == 0 || intervals == 0 {
        return; // shrunk out of the generator's precondition
    }
    let run = |proto, prefetch| run_page_trace(nodes, tpn, pages, intervals, seed, proto, prefetch);
    let adaptive = run(ProtoSelect::Adaptive, true);
    let shape = format!("({nodes}x{tpn}, {pages}p, {intervals}iv, seed {seed:#x})");
    assert_eq!(
        adaptive, run(ProtoSelect::Adaptive, false),
        "prefetch must not change one bit {shape}"
    );
    assert_eq!(
        adaptive, run(ProtoSelect::AllInvalidate, false),
        "adaptive must equal all-invalidate {shape}"
    );
    assert_eq!(
        adaptive, run(ProtoSelect::AllUpdate, true),
        "adaptive must equal all-update {shape}"
    );
});

/// The real kernels across all three protocol modes: CG's migratory
/// reductions, Helmholtz's halo exchange, and the task-based n-body all
/// have to land on identical bits whichever protocol moves their pages.
#[test]
fn kernels_are_bit_identical_across_protocol_modes() {
    use parade::kernels::cg::{cg_parade, CgClass};
    use parade::kernels::helmholtz::{helmholtz_parade, HelmholtzParams};
    use parade::kernels::md::MdParams;
    use parade::kernels::nbody_task::nbody_task_parade;

    const MODES: [ProtoSelect; 3] = [
        ProtoSelect::Adaptive,
        ProtoSelect::AllInvalidate,
        ProtoSelect::AllUpdate,
    ];
    let fingerprints: Vec<Vec<u64>> = MODES
        .iter()
        .map(|&m| {
            // A fresh cluster per kernel: regions are never freed, so one
            // shared pool would just measure allocator pressure.
            let mk = || {
                parade::core::Cluster::builder()
                    .nodes(4)
                    .threads_per_node(2)
                    .net(NetProfile::zero())
                    .time(parade::net::TimeSource::Manual)
                    .proto_select(m)
                    .build()
                    .unwrap()
            };
            let (cg, _) = cg_parade(&mk(), CgClass::S);
            assert!(
                (cg.zeta - 8.5971775078648).abs() <= 1e-10,
                "zeta={}",
                cg.zeta
            );
            let (hh, _) = helmholtz_parade(&mk(), HelmholtzParams::sized(32, 32, 30));
            let (nb, _) = nbody_task_parade(&mk(), MdParams::sized(48, 3), 8);
            vec![
                cg.zeta.to_bits(),
                cg.rnorm.to_bits(),
                hh.iters as u64,
                hh.error.to_bits(),
                hh.solution_error.to_bits(),
                nb.first.potential.to_bits(),
                nb.first.kinetic.to_bits(),
                nb.last.potential.to_bits(),
                nb.last.kinetic.to_bits(),
            ]
        })
        .collect();
    assert_eq!(
        fingerprints[0], fingerprints[1],
        "adaptive vs all-invalidate"
    );
    assert_eq!(fingerprints[0], fingerprints[2], "adaptive vs all-update");
}

// ---- runtime reduction laws over cluster shapes -------------------------------

prop!(cases = 12, fn hierarchical_reduce_equals_flat_fold((nodes, tpn, vals) in |r: &mut TestRng| {
    let nodes = r.range_usize(1, 5);
    let tpn = r.range_usize(1, 4);
    let n = r.range_usize(1, 20);
    let vals: Vec<i64> = (0..n).map(|_| r.range_i64(-1000, 1000)).collect();
    (nodes, tpn, vals)
}) {
    if nodes == 0 || tpn == 0 {
        return; // shrunk out of the generator's precondition
    }
    let cluster = parade::core::Cluster::builder()
        .nodes(nodes)
        .threads_per_node(tpn)
        .net(NetProfile::zero())
        .time(parade::net::TimeSource::Manual)
        .pool_bytes(256 * PAGE_SIZE)
        .build()
        .unwrap();
    let vals2 = vals.clone();
    let total_threads = nodes * tpn;
    let got = cluster.run(move |g| {
        g.parallel(move |tc| {
            let mut sums = Vec::new();
            for &v in &vals2 {
                // Every thread contributes v * (tid + 1).
                let mine = v * (tc.thread_num() as i64 + 1);
                sums.push(tc.reduce_i64(parade::core::ReduceOp::Sum, mine));
            }
            sums
        })
    });
    let weight: i64 = (1..=total_threads as i64).sum();
    for (v, s) in vals.iter().zip(got) {
        assert_eq!(s, v * weight);
    }
});
