//! Golden tests for the analyzer's negative paths: the exact rendered
//! diagnostic (`file:line:col: severity[PCnnn]: message` prefix) for every
//! lint id, plus the parse errors that fire before the analyzer gets a
//! look (unsupported directives and clauses are front-end rejections, not
//! lints).

use parade::check::{check_source, check_source_ast, has_errors, Diag, LintId, Severity};

/// Render like `paradec check` does and keep only `file:line:col:
/// severity[code]` — messages may be tuned without re-blessing every test,
/// while positions and codes are pinned exactly.
fn rendered_heads(diags: &[Diag]) -> Vec<String> {
    diags
        .iter()
        .map(|d| {
            let full = d.render("prog.c");
            let end = full.find("]: ").expect("renders a lint code") + 1;
            full[..end].to_string()
        })
        .collect()
}

#[test]
fn pc001_golden() {
    let diags = check_source(
        "int main() {\n    double sum;\n    #pragma omp parallel\n    {\n        sum = sum + 1.0;\n    }\n    return 0;\n}\n",
    )
    .unwrap();
    assert_eq!(rendered_heads(&diags), vec!["prog.c:5:9: error[PC001]"]);
    assert!(diags[0].message.contains("`sum`"), "{}", diags[0].message);
}

#[test]
fn pc002_golden() {
    let diags = check_source(
        "int main() {\n    int i;\n    double a[64];\n    #pragma omp parallel for\n    for (i = 1; i < 64; i++) {\n        a[i] = a[i - 1];\n    }\n    return 0;\n}\n",
    )
    .unwrap();
    // Reported at the directive, not the statement: the dependence is a
    // property of the distributed loop.
    assert_eq!(rendered_heads(&diags), vec!["prog.c:4:5: error[PC002]"]);
    assert!(
        diags[0].message.contains("`a[i]`") && diags[0].message.contains("`a[i-1]`"),
        "{}",
        diags[0].message
    );
}

#[test]
fn pc003_golden() {
    let diags = check_source(
        "int main() {\n    int i;\n    double p;\n    #pragma omp parallel for reduction(* : p)\n    for (i = 0; i < 8; i++) {\n        p += 1.0;\n    }\n    return 0;\n}\n",
    )
    .unwrap();
    assert_eq!(rendered_heads(&diags), vec!["prog.c:6:9: error[PC003]"]);
    assert!(
        diags[0].message.contains('*') && diags[0].message.contains('+'),
        "names both operators: {}",
        diags[0].message
    );
}

#[test]
fn pc004_golden() {
    let diags = check_source(
        "int main() {\n    double x;\n    #pragma omp parallel\n    {\n        #pragma omp single\n        {\n            x = 1.0;\n            #pragma omp barrier\n        }\n    }\n    return 0;\n}\n",
    )
    .unwrap();
    assert_eq!(rendered_heads(&diags), vec!["prog.c:8:13: error[PC004]"]);
    assert!(diags[0].message.contains("single"), "{}", diags[0].message);
}

#[test]
fn pc005_golden() {
    let diags = check_source(
        "int main() {\n    int i;\n    int j;\n    double a[64];\n    double b[64];\n    #pragma omp parallel\n    {\n        #pragma omp for nowait\n        for (i = 0; i < 64; i++) {\n            a[i] = 1.0;\n        }\n        #pragma omp for\n        for (j = 0; j < 64; j++) {\n            b[j] = a[63 - j];\n        }\n    }\n    return 0;\n}\n",
    )
    .unwrap();
    // Anchored on the statement that touches the unjoined data.
    assert_eq!(rendered_heads(&diags), vec!["prog.c:12:9: error[PC005]"]);
    assert!(
        diags[0].message.contains("`a`") && diags[0].message.contains("line 8"),
        "{}",
        diags[0].message
    );
}

#[test]
fn pc006_golden() {
    let diags = check_source(
        "int main() {\n    double t;\n    double out[16];\n    #pragma omp parallel private(t)\n    {\n        out[omp_get_thread_num()] = t;\n        t = 0.0;\n    }\n    return 0;\n}\n",
    )
    .unwrap();
    assert_eq!(rendered_heads(&diags), vec!["prog.c:6:9: warning[PC006]"]);
    assert!(
        diags[0].message.contains("firstprivate(t)"),
        "suggests the fix: {}",
        diags[0].message
    );
    assert!(!has_errors(&diags), "PC006 alone must not gate");
}

#[test]
fn pc007_orphan_golden() {
    let diags = check_source(
        "int main() {\n    int i;\n    double a[8];\n    #pragma omp for\n    for (i = 0; i < 8; i++) {\n        a[i] = 1.0;\n    }\n    return 0;\n}\n",
    )
    .unwrap();
    assert_eq!(rendered_heads(&diags), vec!["prog.c:4:5: error[PC007]"]);
    assert!(
        diags[0].message.contains("outside a parallel region"),
        "{}",
        diags[0].message
    );
}

#[test]
fn pc007_bad_nesting_golden() {
    // A work-sharing loop inside a `single` — illegal nesting.
    let diags = check_source(
        "int main() {\n    int i;\n    double a[8];\n    #pragma omp parallel\n    {\n        #pragma omp single\n        {\n            #pragma omp for\n            for (i = 0; i < 8; i++) {\n                a[i] = 1.0;\n            }\n        }\n    }\n    return 0;\n}\n",
    )
    .unwrap();
    assert_eq!(rendered_heads(&diags), vec!["prog.c:8:13: error[PC007]"]);
    assert!(
        diags[0].message.contains("nested inside `single`"),
        "{}",
        diags[0].message
    );
}

#[test]
fn pc007_unknown_clause_var_golden() {
    let diags = check_source(
        "int main() {\n    double x;\n    #pragma omp parallel private(ghost)\n    {\n        #pragma omp atomic\n        x += 1.0;\n    }\n    return 0;\n}\n",
    )
    .unwrap();
    assert_eq!(rendered_heads(&diags), vec!["prog.c:3:5: error[PC007]"]);
    assert!(
        diags[0].message.contains("`ghost`") && diags[0].message.contains("private"),
        "{}",
        diags[0].message
    );
}

#[test]
fn pc008_golden() {
    let diags = check_source(
        "int main() {\n    double sum;\n    #pragma omp parallel\n    {\n        #pragma omp task\n        {\n            sum = sum + 1.0;\n        }\n        #pragma omp taskwait\n    }\n    return 0;\n}\n",
    )
    .unwrap();
    assert_eq!(rendered_heads(&diags), vec!["prog.c:7:13: error[PC008]"]);
    assert!(
        diags[0].message.contains("depend(out: sum)"),
        "suggests the fix: {}",
        diags[0].message
    );
}

/// A barrier inside a loop a thread-dependent `break` can leave early:
/// lexically legal (PC004 is silent), but the MIR divergence analysis
/// proves threads can disagree on reaching it.
const PC009_SRC: &str = "int main() {\n    int i;\n    int s;\n    #pragma omp parallel private(i, s)\n    {\n        s = 0;\n        for (i = 0; i < 8; i = i + 1) {\n            if (omp_get_thread_num() > 0) {\n                break;\n            }\n            #pragma omp barrier\n            s = s + 1;\n        }\n    }\n    return 0;\n}\n";

#[test]
fn pc009_golden() {
    let diags = check_source(PC009_SRC).unwrap();
    assert_eq!(rendered_heads(&diags), vec!["prog.c:11:13: error[PC009]"]);
    assert!(
        diags[0].message.contains("thread-divergent"),
        "{}",
        diags[0].message
    );
    // Flow-sensitive only: the lexical analyzer cannot see it.
    assert!(check_source_ast(PC009_SRC).unwrap().is_empty());
}

#[test]
fn pc010_golden() {
    let src = "int main() {\n    double x;\n    double y;\n    #pragma omp parallel\n    {\n        #pragma omp task depend(in: y) depend(out: x)\n        {\n            x = y + 1.0;\n        }\n        #pragma omp task depend(in: x) depend(out: y)\n        {\n            y = x + 1.0;\n        }\n        #pragma omp taskwait\n    }\n    return 0;\n}\n";
    let diags = check_source(src).unwrap();
    // One diagnostic per cycle, anchored at the lexically-first task.
    assert_eq!(rendered_heads(&diags), vec!["prog.c:6:9: error[PC010]"]);
    assert!(
        diags[0].message.contains("`x`, `y`") && diags[0].message.contains("lines 6, 10"),
        "{}",
        diags[0].message
    );
    assert!(check_source_ast(src).unwrap().is_empty());
}

#[test]
fn json_output_golden() {
    // `--json` shape is machine-consumed: pin every field byte-for-byte.
    let diags = check_source(PC009_SRC).unwrap();
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].render_json("prog.c"),
        r#"{"file":"prog.c","lint":"PC009","name":"barrier-divergence-deadlock","severity":"error","line":11,"col":13,"message":"barrier in thread-divergent control flow: the divergence analysis proves threads of the team can disagree on reaching it; threads that arrive wait forever"}"#
    );
}

#[test]
fn multi_error_ordering_golden() {
    // Three diagnostics at three positions: both backends must emit the
    // same sequence, sorted by (line, col, lint id).
    let src = "int main() {\n    double s;\n    double t;\n    #pragma omp parallel private(t)\n    {\n        t = t + 1.0;\n        s = s + 1.0;\n        #pragma omp single\n        {\n            s = 2.0;\n            #pragma omp barrier\n        }\n    }\n    return 0;\n}\n";
    let mir = check_source(src).unwrap();
    let ast = check_source_ast(src).unwrap();
    assert_eq!(mir, ast, "backends disagree on a PC001-PC008 program");
    assert_eq!(
        rendered_heads(&mir),
        vec![
            "prog.c:6:9: warning[PC006]",
            "prog.c:7:9: error[PC001]",
            "prog.c:11:13: error[PC004]",
        ]
    );
    let pos: Vec<_> = mir.iter().map(|d| (d.span.line, d.span.col)).collect();
    let mut sorted = pos.clone();
    sorted.sort();
    assert_eq!(pos, sorted, "diagnostics not in ascending source order");
}

#[test]
fn every_lint_id_is_exercised_above() {
    // Companion assertion: the suite covers the whole taxonomy.
    assert_eq!(LintId::ALL.len(), 10);
    for l in LintId::ALL {
        let sev = l.severity();
        match l {
            LintId::PrivateUninitRead => assert_eq!(sev, Severity::Warning),
            _ => assert_eq!(sev, Severity::Error),
        }
    }
}

// ---- front-end rejections (not lints) ------------------------------------

#[test]
fn unsupported_directive_is_a_parse_error() {
    let err = check_source("int main() {\n#pragma omp sections\n{ }\nreturn 0; }").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("sections"), "{msg}");
}

#[test]
fn unknown_clause_is_a_parse_error() {
    let err = check_source(
        "int main() { int i; double a[8];\n#pragma omp parallel for collapse(2)\nfor (i = 0; i < 8; i++) a[i] = 1.0;\nreturn 0; }",
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("collapse"), "{msg}");
}

#[test]
fn bad_reduction_operator_is_a_parse_error() {
    let err = check_source(
        "int main() { int i; double s;\n#pragma omp parallel for reduction(- : s)\nfor (i = 0; i < 8; i++) s = s - 1.0;\nreturn 0; }",
    )
    .unwrap_err();
    assert!(err.to_string().contains("reduction"), "{err}");
}
