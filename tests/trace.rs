//! Property and golden tests for the `parade-trace` subsystem: ring-wrap
//! drop accounting, event-order preservation, span-nesting balance under
//! arbitrary operation sequences, and a traced end-to-end cluster run whose
//! Chrome `trace_event` output must satisfy the in-repo JSON validator.

use parade_testkit::prelude::*;

use parade::core::{Cluster, StatsReport};
use parade::net::{NetProfile, TimeSource, VTime};
use parade::trace::{
    aggregate, validate_json, EventKind, Identity, Phase, Ring, ThreadTrace, TraceConfig,
    TraceEvent,
};

fn ev(kind: EventKind, phase: Phase, arg: u64, vt: u64) -> TraceEvent {
    TraceEvent {
        kind,
        phase,
        arg,
        vtime: VTime(vt),
        wall_ns: vt,
    }
}

// ---- ring wrap -------------------------------------------------------------

/// (requested capacity, number of pushes).
fn wrap_case(r: &mut TestRng) -> (usize, usize) {
    (r.range_usize(0, 64), r.range_usize(0, 512))
}

prop!(fn ring_wrap_keeps_newest_with_exact_drop_count((cap, n) in wrap_case) {
    let mut ring = Ring::new(cap);
    for i in 0..n {
        ring.push(ev(EventKind::DsmReadFault, Phase::Instant, i as u64, i as u64));
    }
    let kept = ring.len();
    assert_eq!(kept, n.min(ring.capacity()));
    assert_eq!(ring.dropped(), (n - kept) as u64);
    // The survivors are exactly the newest `kept` events, oldest first.
    let events = ring.events();
    for (j, e) in events.iter().enumerate() {
        assert_eq!(e.arg, (n - kept + j) as u64);
    }
    // Draining resets but keeps the identity invariant: kept + dropped = n.
    let t = ring.take();
    assert_eq!(t.events.len() as u64 + t.dropped, n as u64);
    assert!(ring.is_empty());
    assert_eq!(ring.dropped(), 0);
});

// ---- order preservation ----------------------------------------------------

/// Monotone virtual-time increments for one thread.
fn increments(r: &mut TestRng) -> Vec<u64> {
    let n = r.range_usize(0, 200);
    (0..n).map(|_| r.below(1_000)).collect()
}

prop!(fn events_stay_monotone_in_vtime(incs in increments) {
    let mut ring = Ring::new(TraceConfig::DEFAULT_CAPACITY);
    let mut vt = 0u64;
    for (i, d) in incs.iter().enumerate() {
        vt += d;
        ring.push(ev(EventKind::DsmTwin, Phase::Instant, i as u64, vt));
    }
    let events = ring.events();
    assert_eq!(events.len(), incs.len());
    for w in events.windows(2) {
        assert!(w[0].vtime <= w[1].vtime, "drained order must preserve vtime order");
        assert!(w[0].arg < w[1].arg, "drained order must preserve push order");
    }
});

// ---- span nesting ----------------------------------------------------------

const SPAN_KINDS: [EventKind; 4] = [
    EventKind::OmpBarrier,
    EventKind::OmpCritical,
    EventKind::DsmFetch,
    EventKind::MpiAllreduce,
];

/// A balanced nesting sequence built with an explicit stack: at each step
/// either open a new span, close the innermost, or emit an instant. All
/// remaining opens are closed at the end, so the stream is balanced.
fn balanced_ops(r: &mut TestRng) -> Vec<(u8, u8)> {
    let n = r.range_usize(0, 120);
    let mut depth = 0usize;
    let mut ops = Vec::new();
    for _ in 0..n {
        let kind = r.below(SPAN_KINDS.len() as u64) as u8;
        match r.below(3) {
            0 => {
                ops.push((0, kind)); // open
                depth += 1;
            }
            1 if depth > 0 => {
                ops.push((1, 0)); // close innermost
                depth -= 1;
            }
            _ => ops.push((2, kind)), // instant
        }
    }
    for _ in 0..depth {
        ops.push((1, 0));
    }
    ops
}

/// Materialize an op stream into a thread trace, tracking the open-span
/// stack so closes name the matching kind. Returns (trace, opens).
fn build_spans(ops: &[(u8, u8)]) -> (ThreadTrace, usize) {
    let mut events = Vec::new();
    let mut stack: Vec<EventKind> = Vec::new();
    let mut opens = 0;
    let mut vt = 0u64;
    for &(op, kind) in ops {
        vt += 10;
        let kind = SPAN_KINDS[(kind as usize) % SPAN_KINDS.len()];
        match op {
            0 => {
                stack.push(kind);
                opens += 1;
                events.push(ev(kind, Phase::Begin, 0, vt));
            }
            1 => {
                let k = stack.pop().expect("balanced stream");
                events.push(ev(k, Phase::End, 0, vt));
            }
            _ => events.push(ev(EventKind::DsmDiff, Phase::Instant, 1, vt)),
        }
    }
    assert!(stack.is_empty());
    (
        ThreadTrace {
            identity: Identity {
                node: 0,
                name: "t0".into(),
            },
            events,
            dropped: 0,
        },
        opens,
    )
}

prop!(fn balanced_nesting_aggregates_without_unbalance(ops in balanced_ops) {
    let (t, opens) = build_spans(&ops);
    let report = aggregate(std::slice::from_ref(&t));
    assert_eq!(report.unbalanced, 0, "balanced stream must not count as unbalanced");
    let span_count: u64 = report.spans.iter().map(|s| s.count).sum();
    assert_eq!(span_count, opens as u64);
    // Exclusive times cannot exceed the thread's total span of virtual time.
    let self_sum: u64 = report.spans.iter().map(|s| s.self_ns).sum();
    assert!(self_sum <= 10 * (ops.len() as u64 + 1));
});

/// Arbitrary (possibly unbalanced) phase streams must aggregate without
/// panicking, and never credit more spans than Ends seen.
fn arbitrary_events(r: &mut TestRng) -> Vec<(u8, u8)> {
    let n = r.range_usize(0, 150);
    (0..n)
        .map(|_| (r.below(3) as u8, r.below(SPAN_KINDS.len() as u64) as u8))
        .collect()
}

prop!(fn arbitrary_sequences_never_panic(raw in arbitrary_events) {
    let mut events = Vec::new();
    let mut ends = 0u64;
    for (i, &(op, kind)) in raw.iter().enumerate() {
        let kind = SPAN_KINDS[(kind as usize) % SPAN_KINDS.len()];
        let phase = match op {
            0 => Phase::Begin,
            1 => { ends += 1; Phase::End }
            _ => Phase::Instant,
        };
        events.push(ev(kind, phase, 0, 10 * i as u64));
    }
    let t = ThreadTrace {
        identity: Identity::untagged(),
        events,
        dropped: 0,
    };
    let report = aggregate(std::slice::from_ref(&t));
    let span_count: u64 = report.spans.iter().map(|s| s.count).sum();
    assert!(span_count <= ends, "a span completes only on a matching End");
});

// ---- golden: traced end-to-end run -----------------------------------------

#[test]
fn traced_run_emits_valid_chrome_json_and_report() {
    let session = parade::trace::start(TraceConfig::default())
        .expect("no other session active in this test binary");
    let cluster = Cluster::builder()
        .nodes(2)
        .threads_per_node(2)
        .net(NetProfile::zero())
        .time(TimeSource::Manual)
        .pool_bytes(256 * parade::dsm::PAGE_SIZE)
        .build()
        .unwrap();
    let (_, run) = cluster.run_with_report(|g| {
        let xs = g.alloc_f64(512);
        g.parallel(move |tc| {
            tc.par_for(0..512, |i| tc.set(&xs, i, 2.0));
            let mut s = 0.0;
            for i in tc.for_static(0..512) {
                s += tc.get(&xs, i);
            }
            tc.reduce_f64_sum(s)
        });
    });
    let data = session.finish();

    // Chrome trace output passes the in-repo RFC 8259 validator.
    let json = data.chrome_json();
    validate_json(&json).expect("chrome trace JSON must be well-formed");
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("process_name"));

    let report = data.report();
    assert!(!report.is_empty());
    assert_eq!(report.dropped, 0, "small run must not wrap the rings");
    assert_eq!(report.unbalanced, 0, "runtime spans must nest cleanly");
    // Both nodes ran barriers, and attribution respects the vclock bound.
    let max_node = run.node_times.iter().copied().max().unwrap();
    for node in 0..2u32 {
        assert!(
            report
                .spans
                .iter()
                .any(|s| s.node == node && s.kind == EventKind::OmpBarrier && s.count > 0),
            "node {node} must show omp.barrier spans"
        );
        assert!(
            report.attributed_ns(node) <= max_node.as_nanos(),
            "attributed time cannot exceed the node vclock"
        );
    }

    // The unified StatsReport embeds the same trace data when the runtime
    // owns the session; here we attach it manually and check the JSON path.
    let mut stats = StatsReport::from_run("golden", &run);
    stats.trace = Some(report);
    validate_json(&stats.json()).expect("stats JSON must be well-formed");
    assert!(stats.render().contains("omp.barrier"));
}
