/* Every thread spawns a task that bumps the shared accumulator with no
 * `depend` edge and no synchronization: the task instances run
 * concurrently under the work-stealing scheduler.
 * Expected: PC008 statically; write-write races dynamically. */
int main() {
    double sum;
    sum = 0.0;
    #pragma omp parallel
    {
        #pragma omp task
        {
            sum = sum + 1.0;
        }
        #pragma omp taskwait
    }
    printf("%f\n", sum);
    return 0;
}
