/* The second loop reads `a` in reverse while stragglers may still be
 * writing it — the nowait removed the only join.
 * Expected: PC005 statically; read-write races on `a` dynamically. */
int main() {
    int i;
    int j;
    double a[64];
    double b[64];
    #pragma omp parallel
    {
        #pragma omp for nowait
        for (i = 0; i < 64; i++) {
            a[i] = 1.0 * i;
        }
        #pragma omp for
        for (j = 0; j < 64; j++) {
            b[j] = a[63 - j];
        }
    }
    return 0;
}
