/* The scratch variable `t` defaults to shared, so every thread funnels its
 * loop iterations through one location.
 * Expected: PC001 statically; races on `t` dynamically. */
int main() {
    int i;
    double t;
    double a[64];
    double b[64];
    #pragma omp parallel for
    for (i = 0; i < 64; i++) {
        t = a[i] * 2.0;
        b[i] = t;
    }
    return 0;
}
