/* A sum loop with the reduction clause forgotten.
 * Expected: PC001 statically; races on `sum` dynamically. */
int main() {
    int i;
    double sum;
    double a[64];
    sum = 0.0;
    #pragma omp parallel for
    for (i = 0; i < 64; i++) {
        sum += a[i];
    }
    printf("%f\n", sum);
    return 0;
}
