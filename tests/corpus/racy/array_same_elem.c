/* All threads write the same array element.
 * Expected: PC001 statically; write-write race on a[0] dynamically. */
int main() {
    double a[8];
    #pragma omp parallel
    {
        a[0] = 1.0 * omp_get_thread_num();
    }
    return 0;
}
