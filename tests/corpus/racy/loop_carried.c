/* Prefix recurrence split across threads: the first iteration of each
 * chunk reads the element the previous chunk's owner writes.
 * Expected: PC002 statically; read-write races at chunk borders. */
int main() {
    int i;
    double a[64];
    a[0] = 1.0;
    #pragma omp parallel for
    for (i = 1; i < 64; i++) {
        a[i] = a[i - 1] + 1.0;
    }
    return 0;
}
