/* Row recurrence under a row-parallel loop: row i needs row i-1, which a
 * different thread writes.
 * Expected: PC002 statically; races at row-block borders. */
int main() {
    int i;
    int j;
    double g[16][8];
    #pragma omp parallel for private(j)
    for (i = 1; i < 16; i++) {
        for (j = 0; j < 8; j++) {
            g[i][j] = g[i - 1][j] * 0.5;
        }
    }
    return 0;
}
