/* The inner sequential loop variable `j` was never privatized, so every
 * thread uses one shared counter as its loop control.
 * Expected: PC001 statically; races on `j` dynamically. */
int main() {
    int i;
    int j;
    double b[32];
    #pragma omp parallel for
    for (i = 0; i < 32; i++) {
        b[i] = 0.0;
        for (j = 0; j < 4; j++) {
            b[i] = b[i] + 1.0;
        }
    }
    return 0;
}
