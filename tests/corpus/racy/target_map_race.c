/* Every thread offloads a `target` region that read-modify-writes the
 * same mapped scalar; nothing orders the offloads against each other.
 * Expected: PC008 statically; write-write races dynamically. */
int main() {
    double x;
    x = 0.0;
    #pragma omp parallel
    {
        #pragma omp target map(tofrom: x)
        {
            x = x + 1.0;
        }
    }
    printf("%f\n", x);
    return 0;
}
