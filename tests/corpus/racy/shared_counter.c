/* Every thread bumps the shared counter with a plain read-modify-write.
 * Expected: PC001 statically; write-write / read-write races dynamically. */
int main() {
    double sum;
    sum = 0.0;
    #pragma omp parallel
    {
        sum = sum + 1.0;
    }
    printf("%f\n", sum);
    return 0;
}
