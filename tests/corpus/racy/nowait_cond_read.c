/* The guarded read of `a[0]` races with stragglers still writing `a` in
 * the nowait loop: the condition on shared `n` is always true, and no
 * barrier separates the loop from the read.
 * Expected: PC005 statically; write-read races on `a` dynamically. */
int main() {
    int i;
    int n;
    double first;
    double a[64];
    n = 64;
    #pragma omp parallel private(first)
    {
        #pragma omp for nowait
        for (i = 0; i < 64; i++) {
            a[i] = 1.0 * i;
        }
        if (n > 32) {
            first = a[0];
        }
    }
    return 0;
}
