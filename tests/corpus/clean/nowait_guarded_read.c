/* Near-miss twin of racy/nowait_cond_read.c: an explicit barrier joins
 * the nowait loop before the guarded read, so every write to `a`
 * happens-before the read of `a[0]`.
 * Expected: clean. */
int main() {
    int i;
    int n;
    double first;
    double a[64];
    n = 64;
    #pragma omp parallel private(first)
    {
        #pragma omp for nowait
        for (i = 0; i < 64; i++) {
            a[i] = 1.0 * i;
        }
        #pragma omp barrier
        if (n > 32) {
            first = a[0];
        }
    }
    return 0;
}
