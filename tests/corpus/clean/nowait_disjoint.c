/* Back-to-back nowait-able loops touching different arrays — the nowait
 * is safe here. Expected: clean. */
int main() {
    int i;
    int j;
    double a[64];
    double b[64];
    #pragma omp parallel
    {
        #pragma omp for nowait
        for (i = 0; i < 64; i++) {
            a[i] = 1.0;
        }
        #pragma omp for
        for (j = 0; j < 64; j++) {
            b[j] = 2.0;
        }
    }
    printf("%f %f\n", a[0], b[0]);
    return 0;
}
