/* Embarrassingly parallel element-wise map: each iteration owns its
 * element. Expected: no diagnostics, no races. */
int main() {
    int i;
    double a[64];
    double b[64];
    #pragma omp parallel for
    for (i = 0; i < 64; i++) {
        a[i] = 1.0 * i;
    }
    #pragma omp parallel for
    for (i = 0; i < 64; i++) {
        b[i] = a[i] * 0.5;
    }
    printf("%f\n", b[63]);
    return 0;
}
