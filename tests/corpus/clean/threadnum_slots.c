/* Per-thread slots indexed by omp_get_thread_num(). Expected: clean. */
int main() {
    double slot[16];
    #pragma omp parallel
    {
        slot[omp_get_thread_num()] = 1.0;
    }
    printf("%f\n", slot[0]);
    return 0;
}
