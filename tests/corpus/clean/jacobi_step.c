/* One Jacobi sweep: neighbour reads of `a`, writes only to `b` — the
 * offsets differ but never on the same array. Expected: clean. */
int main() {
    int i;
    double a[64];
    double b[64];
    #pragma omp parallel for
    for (i = 0; i < 64; i++) {
        a[i] = 1.0 * i;
    }
    #pragma omp parallel for
    for (i = 1; i < 63; i++) {
        b[i] = 0.5 * (a[i - 1] + a[i + 1]);
    }
    printf("%f\n", b[32]);
    return 0;
}
