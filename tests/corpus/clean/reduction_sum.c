/* The textbook reduction loop. Expected: clean both ways. */
int main() {
    int i;
    double sum;
    double a[64];
    #pragma omp parallel for
    for (i = 0; i < 64; i++) {
        a[i] = 1.0;
    }
    sum = 0.0;
    #pragma omp parallel for reduction(+ : sum)
    for (i = 0; i < 64; i++) {
        sum += a[i];
    }
    printf("%f\n", sum);
    return 0;
}
