/* The shared accumulator is only ever touched under `critical`.
 * Expected: clean. */
int main() {
    double sum;
    sum = 0.0;
    #pragma omp parallel
    {
        double local;
        local = 1.0;
        #pragma omp critical
        {
            sum = sum + local;
        }
    }
    printf("%f\n", sum);
    return 0;
}
