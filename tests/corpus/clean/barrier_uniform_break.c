/* Near-miss twin of conform/barrier_divergent_break.c: the break
 * condition reads only the shared `n`, so every thread takes it on the
 * same iteration and the barrier is reached (or skipped) by the whole
 * team together.
 * Expected: clean. */
int main() {
    int i;
    int s;
    int n;
    n = 64;
    #pragma omp parallel private(i, s)
    {
        s = 0;
        for (i = 0; i < 8; i = i + 1) {
            if (n > 32) {
                break;
            }
            #pragma omp barrier
            s = s + 1;
        }
    }
    printf("%d\n", n);
    return 0;
}
