/* A two-stage task pipeline: the producer writes `a` under depend(out)
 * and the consumer reads it under depend(in), writing `b` under its own
 * out-edge. The dependence edges order every access.
 * Expected: clean. */
int main() {
    double a;
    double b;
    a = 0.0;
    b = 0.0;
    #pragma omp parallel
    {
        #pragma omp task depend(out: a)
        {
            a = a + 1.0;
        }
        #pragma omp task depend(in: a) depend(out: b)
        {
            b = b + a;
        }
        #pragma omp taskwait
    }
    printf("%f %f\n", a, b);
    return 0;
}
