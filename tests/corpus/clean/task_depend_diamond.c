/* Near-miss twin of conform/task_depend_cycle.c: the depend edges chain
 * forward (x -> y -> z), so the scheduler releases the tasks in spawn
 * order and every access is ordered.
 * Expected: clean. */
int main() {
    double x;
    double y;
    double z;
    x = 1.0;
    y = 0.0;
    z = 0.0;
    #pragma omp parallel
    {
        #pragma omp task depend(out: x)
        {
            x = 2.0;
        }
        #pragma omp task depend(in: x) depend(out: y)
        {
            y = x + 1.0;
        }
        #pragma omp task depend(in: y) depend(out: z)
        {
            z = y + 1.0;
        }
        #pragma omp taskwait
    }
    printf("%f\n", z);
    return 0;
}
