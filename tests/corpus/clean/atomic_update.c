/* Same accumulator, `atomic` flavour. Expected: clean. */
int main() {
    double x;
    x = 0.0;
    #pragma omp parallel
    {
        #pragma omp atomic
        x += 2.0;
    }
    printf("%f\n", x);
    return 0;
}
