/* One thread sets the tolerance, the construct's synchronization
 * publishes it to the team. Expected: clean. */
int main() {
    double tol;
    #pragma omp parallel
    {
        double mine;
        #pragma omp single
        {
            tol = 0.5;
        }
        mine = tol * 2.0;
    }
    printf("%f\n", tol);
    return 0;
}
