/* Master initializes, an explicit barrier publishes, then everyone
 * reads. Expected: clean. */
int main() {
    double n;
    #pragma omp parallel
    {
        double mine;
        #pragma omp master
        {
            n = 3.0;
        }
        #pragma omp barrier
        mine = n + 1.0;
    }
    printf("%f\n", n);
    return 0;
}
