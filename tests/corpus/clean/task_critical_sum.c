/* Tasks combine into the shared accumulator, but only ever under
 * `critical` — the lock orders the read-modify-writes.
 * Expected: clean. */
int main() {
    double sum;
    sum = 0.0;
    #pragma omp parallel
    {
        #pragma omp task
        {
            #pragma omp critical
            {
                sum = sum + 1.0;
            }
        }
        #pragma omp taskwait
    }
    printf("%f\n", sum);
    return 0;
}
