/* Min-reduction through the fmin combining form. Expected: clean. */
int main() {
    int i;
    double m;
    double a[64];
    #pragma omp parallel for
    for (i = 0; i < 64; i++) {
        a[i] = 100.0 - i;
    }
    m = 1e30;
    #pragma omp parallel for reduction(min : m)
    for (i = 0; i < 64; i++) {
        m = fmin(m, a[i]);
    }
    printf("%f\n", m);
    return 0;
}
