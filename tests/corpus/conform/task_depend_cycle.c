/* Crossed depend edges: each task consumes what the other produces, so
 * the scheduler's dependency graph has a cycle and neither task is ever
 * released — the taskwait blocks forever.
 * Expected: PC010 statically; a real run deadlocks, so no oracle run. */
int main() {
    double x;
    double y;
    x = 0.0;
    y = 0.0;
    #pragma omp parallel
    {
        #pragma omp task depend(in: y) depend(out: x)
        {
            x = y + 1.0;
        }
        #pragma omp task depend(in: x) depend(out: y)
        {
            y = x + 1.0;
        }
        #pragma omp taskwait
    }
    return 0;
}
