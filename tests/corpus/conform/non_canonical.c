/* A downward-counting loop: not in OpenMP canonical form, so the
 * work-sharing lowering cannot split it. Expected: PC007. */
int main() {
    int i;
    double a[8];
    #pragma omp parallel for
    for (i = 8; i > 0; i = i - 1) {
        a[i - 1] = 1.0;
    }
    return 0;
}
