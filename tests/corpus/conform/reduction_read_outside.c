/* The reduction variable is read mid-loop, where it holds only this
 * thread's partial — not the global sum. Expected: PC003. */
int main() {
    int i;
    double s;
    double a[64];
    s = 0.0;
    #pragma omp parallel for reduction(+ : s)
    for (i = 0; i < 64; i++) {
        a[i] = s;
        s += 1.0;
    }
    return 0;
}
