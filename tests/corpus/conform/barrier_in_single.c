/* Only the single's executor reaches the barrier: the rest of the team
 * waits at the construct exit. Expected: PC004 (never run: deadlocks). */
int main() {
    double x;
    #pragma omp parallel
    {
        #pragma omp single
        {
            x = 1.0;
            #pragma omp barrier
        }
    }
    return 0;
}
