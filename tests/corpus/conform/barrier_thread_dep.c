/* Only thread 0 takes the branch holding the barrier.
 * Expected: PC004 (never run: deadlocks). */
int main() {
    #pragma omp parallel
    {
        if (omp_get_thread_num() == 0) {
            #pragma omp barrier
        }
    }
    return 0;
}
