/* Declared as a product reduction but combined with +=: each thread's
 * partial starts at the `*` identity and the merge multiplies.
 * Expected: PC003. Runs without races (the variable is privatized), but
 * computes nonsense. */
int main() {
    int i;
    double p;
    p = 1.0;
    #pragma omp parallel for reduction(* : p)
    for (i = 0; i < 8; i++) {
        p += 1.0;
    }
    printf("%f\n", p);
    return 0;
}
