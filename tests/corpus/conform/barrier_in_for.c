/* Iterations are divided among threads, so threads hit the barrier a
 * different number of times. Expected: PC004 (never run: deadlocks). */
int main() {
    int i;
    double a[64];
    #pragma omp parallel for
    for (i = 0; i < 64; i++) {
        a[i] = 1.0;
        #pragma omp barrier
    }
    return 0;
}
