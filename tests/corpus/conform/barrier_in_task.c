/* A barrier inside a task body: the task's executor may be any single
 * thread on any node, so there is no team to join — the runtime rejects
 * the nesting outright.
 * Expected: PC007 statically (not oracle-checkable: the interpreter
 * errors before any access happens). */
int main() {
    double x;
    x = 0.0;
    #pragma omp parallel
    {
        #pragma omp task depend(out: x)
        {
            x = 1.0;
            #pragma omp barrier
        }
        #pragma omp taskwait
    }
    return 0;
}
