/* The private clause names a variable that does not exist.
 * Expected: PC007. */
int main() {
    double x;
    #pragma omp parallel private(nosuch)
    {
        #pragma omp critical
        {
            x = x + 1.0;
        }
    }
    return 0;
}
