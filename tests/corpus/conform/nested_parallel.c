/* Nested parallel regions. Expected: PC007 (unsupported by the runtime). */
int main() {
    double a[16];
    #pragma omp parallel
    {
        #pragma omp parallel
        {
            a[omp_get_thread_num()] = 1.0;
        }
    }
    return 0;
}
