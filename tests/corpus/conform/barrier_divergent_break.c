/* Threads other than 0 break out of the loop before ever reaching the
 * barrier, so thread 0 waits at it alone forever. Lexically the barrier
 * sits under no thread-dependent condition (the divergent `if` closed at
 * the `break`), so PC004 stays silent — only the CFG divergence analysis
 * sees that the break makes the rest of the loop body thread-divergent.
 * Expected: PC009 statically; a real run deadlocks, so no oracle run. */
int main() {
    int i;
    int s;
    #pragma omp parallel private(i, s)
    {
        s = 0;
        for (i = 0; i < 8; i = i + 1) {
            if (omp_get_thread_num() > 0) {
                break;
            }
            #pragma omp barrier
            s = s + 1;
        }
    }
    return 0;
}
