/* A work-sharing directive with no enclosing parallel region.
 * Expected: PC007 (the runtime rejects it). */
int main() {
    int i;
    double a[8];
    #pragma omp for
    for (i = 0; i < 8; i++) {
        a[i] = 1.0;
    }
    return 0;
}
