/* `t` is private, so it enters the region holding garbage; the first
 * access is a read. Expected: PC006 warning (firstprivate was meant). */
int main() {
    double t;
    double out[16];
    t = 42.0;
    #pragma omp parallel private(t)
    {
        out[omp_get_thread_num()] = t;
        t = 0.0;
    }
    return 0;
}
