/* `atomic` over a plain copy, which is not an update statement.
 * Expected: PC007. */
int main() {
    double x;
    double y;
    #pragma omp parallel
    {
        #pragma omp atomic
        x = y;
    }
    return 0;
}
