//! # ParADE — Parallel Application Development Environment
//!
//! A reproduction of *"ParADE: An OpenMP Programming Environment for SMP
//! Cluster Systems"* (Kee, Kim, Ha — SC 2003) as a pure-Rust library.
//!
//! ParADE runs OpenMP-style programs on a cluster of SMP nodes by combining
//! a multi-threaded software distributed shared memory (SDSM) with a variant
//! of home-based lazy release consistency (HLRC, with migratory homes) and
//! explicit message-passing collectives for synchronization and work-sharing
//! directives over small data structures.
//!
//! Because the original system ran on real cluster hardware with
//! `mprotect`/`SIGSEGV` paging and a VIA interconnect, this reproduction
//! simulates the cluster in-process: every node is a set of real OS threads
//! with a private address-space copy, the interconnect is a message fabric
//! with a virtual-time cost model, and shared-memory accesses go through
//! typed handles that run the same page-fault protocol in software. See
//! `DESIGN.md` for the full substitution table.
//!
//! ## Crate map
//!
//! * [`net`] — simulated interconnect, virtual clocks, network profiles.
//! * [`mpi`] — thread-safe mini-MPI (send/recv, barrier, bcast, allreduce…).
//! * [`dsm`] — the multi-threaded SDSM: pages, twins/diffs, HLRC protocol,
//!   migratory homes, distributed locks (baseline), small-data objects.
//! * [`cluster`] — node engine: compute threads, communication thread,
//!   fork/join plumbing, execution configurations.
//! * [`core`] — the ParADE runtime API (the paper's programming interface):
//!   `parallel`, work-sharing, `critical`/`atomic`/`single`/reductions.
//! * [`translator`] — the OpenMP translator: mini-C + OpenMP 1.0 frontend,
//!   directive lowering, translated-source emitter, interpreter.
//! * [`mir`] — basic-block MIR for the mini-C frontend: CFG lowering,
//!   worklist-fixpoint dataflow (reaching definitions, liveness,
//!   postdominators), and thread-divergence analysis.
//! * [`check`] — static OpenMP race & conformance analyzer (`paradec
//!   check`): lints PC001–PC010 with spans and stable ids; the default
//!   backend runs flow-sensitively over [`mir`], with the lexical AST walk
//!   kept as a parity oracle, both cross-checked against the interpreter's
//!   happens-before race oracle.
//! * [`kernels`] — NAS CG/EP, Helmholtz, MD, and syncbench workloads.
//! * [`serve`] — multi-job serving layer: gang scheduling with FIFO +
//!   backfill admission and elastic widths, per-job sub-fabric isolation,
//!   and checkpoint/re-home survival of injected node death.
//! * [`trace`] — virtual-time event tracing: per-thread rings, Chrome
//!   `trace_event` export, per-construct overhead attribution
//!   (`PARADE_TRACE=<path>`).
//!
//! ## Quickstart
//!
//! ```
//! use parade::prelude::*;
//!
//! let cluster = Cluster::builder()
//!     .nodes(2)
//!     .threads_per_node(2)
//!     .build()
//!     .unwrap();
//! let sum = cluster.run(|g| {
//!     let xs = g.alloc_f64(1024);
//!     g.parallel(move |tc| {
//!         let v = tc.bind_f64(&xs);
//!         for i in tc.for_static(0..1024) {
//!             v.set(i, i as f64);
//!         }
//!         tc.barrier();
//!         let mut local = 0.0;
//!         for i in tc.for_static(0..1024) {
//!             local += v.get(i);
//!         }
//!         tc.reduce_f64_sum(local)
//!     })
//! });
//! assert_eq!(sum, (0..1024).sum::<i64>() as f64);
//! ```

pub use parade_check as check;
pub use parade_cluster as cluster;
pub use parade_core as core;
pub use parade_dsm as dsm;
pub use parade_kernels as kernels;
pub use parade_mir as mir;
pub use parade_mpi as mpi;
pub use parade_net as net;
pub use parade_serve as serve;
pub use parade_trace as trace;
pub use parade_translator as translator;

/// Convenient re-exports for application code.
pub mod prelude {
    pub use parade_cluster::{ClusterConfig, ExecConfig, ProtocolMode};
    pub use parade_core::{Cluster, MasterCtx, RunReport, ThreadCtx};
    pub use parade_dsm::{LockKind, ProtoSelect, RegionHandle, SmallHandle};
    pub use parade_mpi::ReduceOp;
    pub use parade_net::{NetProfile, VTime};
}
